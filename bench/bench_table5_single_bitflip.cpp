// Table V: model sensitivity to a single bit-flip.
//
// RWC ("restarted with no change") counts trainings whose resumed accuracy
// exactly equals the deterministic clean-resume baseline after 1 bit-flip
// with the exponent MSB excluded. The paper finds models absorb most single
// flips (RWC 46-98.8%).
//
// Each cell's trials fan out on core::TrialScheduler (--jobs N); the clean
// baseline is computed once before the fan-out so trials only read it. Every
// resume carries numeric-health probes, so non-RWC trials come with a
// divergence trace (first-divergent layer/step) in --trials-out — enough for
// ckptfi_report to split absorbed flips from silent corruptions.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "frameworks/framework.hpp"
#include "util/bitops.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  bench::print_banner("Table V: sensitivity to 1 bit-flip (RWC)", opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from,
                              bench::bench_fingerprint(opt, "table5"));

  core::TextTable table(
      {"model", "framework", "trainings", "RWC", "%"});

  for (const auto& model : models::model_names()) {
    for (const auto& framework : fw::framework_names()) {
      core::ExperimentRunner runner(bench::make_config(opt, framework, model));
      // Deterministic baseline: the clean resumed accuracy trajectory plus
      // the probe timeline trials diverge against.
      const core::ExperimentRunner::CleanProbedRun& clean =
          runner.clean_probed_run(opt.resume_epochs);
      const std::string cell = framework + "/" + model;
      std::vector<std::uint8_t> rwc_flags(opt.trainings, 0);
      std::vector<Json> rows(opt.trainings);
      bench::make_scheduler(opt, cell).run(
          opt.trainings, [&](const core::TrialContext& trial) {
            if (const Json* p = trials_out.prior(cell, trial.index)) {
              rwc_flags[trial.index] = p->at("rwc").as_bool() ? 1 : 0;
              return;
            }
            mh5::File ckpt = runner.restart_checkpoint();
            core::CorrupterConfig cc;
            cc.injection_attempts = 1;
            cc.corruption_mode = core::CorruptionMode::BitRange;
            cc.first_bit = 0;
            cc.last_bit = float_layout(64).exponent_msb() - 1;  // spare bit 62
            cc.seed = trial.seed;
            core::Corrupter corrupter(cc);
            core::InjectionReport rep = corrupter.corrupt(ckpt);
            // The flip lands in a random layer; the log tells us which, and
            // the prefix upstream of it is reusable across the cell.
            const std::size_t seg =
                opt.prefix_reuse ? runner.entry_segment(rep.log) : 0;
            core::ExperimentRunner::ProbedResume probed =
                runner.resume_training_probed_from_segment(ckpt, seg,
                                                           opt.resume_epochs);
            const nn::TrainResult& res = probed.result;
            rwc_flags[trial.index] =
                (res.final_accuracy == clean.result.final_accuracy) ? 1 : 0;
            if (trials_out.enabled()) {
              const obs::DivergenceTrace div =
                  runner.divergence_vs_clean(probed.probes, opt.resume_epochs);
              Json row = Json::object();
              row["cell"] = cell;
              row["trial"] = trial.index;
              row["seed"] = std::to_string(trial.seed);
              row["rwc"] = rwc_flags[trial.index] != 0;
              row["collapsed"] = res.collapsed;
              row["final_accuracy"] = res.final_accuracy;
              row["clean_accuracy"] = clean.result.final_accuracy;
              row["log"] = rep.log.to_json();
              row["divergence"] = div.to_json();
              rows[trial.index] = std::move(row);
            }
          });
      trials_out.flush_cell(cell, rows);
      std::size_t rwc = 0;
      for (const auto f : rwc_flags) rwc += f;
      table.add_row({model, framework, std::to_string(opt.trainings),
                     std::to_string(rwc),
                     format_fixed(100.0 * static_cast<double>(rwc) /
                                      static_cast<double>(opt.trainings),
                                  1)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: most cells absorb the flip (RWC 46-98.8%%); when not "
      "absorbed the accuracy change is minor, never a collapse.\n");
  trials_out.commit();
  return 0;
}
