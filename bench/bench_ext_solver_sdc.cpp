// Extension experiment (paper Section VI.5): checkpoint alteration applied
// to traditional iterative PDE solvers.
//
// For growing flip counts, corrupt a mid-run checkpoint of Jacobi and CG on
// the same Poisson problem and measure (a) whether the resumed solver still
// reaches the tolerance, (b) the extra iterations it needs, and (c) for CG,
// whether its internal residual still tracks the truth. The shape: Jacobi
// is self-stabilising; CG converges by its own signal while being wrong.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "solver/heat2d.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

namespace {

core::CorrupterConfig flips_config(std::uint64_t flips, std::uint64_t seed) {
  core::CorrupterConfig cc;
  cc.injection_attempts = static_cast<double>(flips);
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.seed = seed;
  return cc;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("=== Extension: SDC in iterative PDE solvers (Poisson 2-D) ===\n");
  std::printf("scale: %zu trials/cell\n\n", opt.trainings);
  bench::emit_run_start("ext_solver_sdc", opt);

  solver::PoissonProblem problem;
  problem.n = 32;
  const double tol = 1e-6;

  // Clean convergence baselines.
  solver::Jacobi2D clean_jacobi(problem);
  const std::size_t jacobi_base = clean_jacobi.run_until(tol, 500000);
  solver::ConjugateGradient2D clean_cg(problem);
  const std::size_t cg_base = clean_cg.run_until(tol, 50000);
  std::printf("clean iterations to tol %.0e: jacobi %zu, cg %zu\n\n", tol,
              jacobi_base, cg_base);

  core::TextTable table({"solver", "bit-flips", "trials", "recovered",
                         "avg extra iters", "cg residual lies"});

  for (const std::uint64_t flips : {1u, 10u, 100u, 1000u}) {
    // --- Jacobi ---
    std::size_t recovered = 0, extra_sum = 0;
    for (std::size_t t = 0; t < opt.trainings; ++t) {
      solver::Jacobi2D j(problem);
      j.step(jacobi_base / 2);
      mh5::File ckpt = j.checkpoint();
      core::Corrupter(flips_config(flips, 13 * t + flips)).corrupt(ckpt);
      solver::Jacobi2D resumed = solver::Jacobi2D::from_checkpoint(ckpt);
      // Recovery from ~1e300-magnitude corruption takes tens of multiples of
      // the clean iteration count (slow fixed-point contraction), so the cap
      // must be generous.
      const std::size_t used = resumed.run_until(tol, 100 * jacobi_base);
      if (resumed.residual() <= tol) {
        ++recovered;
        const std::size_t remaining_clean = jacobi_base - jacobi_base / 2;
        extra_sum += used > remaining_clean ? used - remaining_clean : 0;
      }
    }
    table.add_row({"jacobi", std::to_string(flips),
                   std::to_string(opt.trainings), std::to_string(recovered),
                   recovered ? format_fixed(static_cast<double>(extra_sum) /
                                                static_cast<double>(recovered),
                                            0)
                             : "-",
                   "n/a"});

    // --- CG ---
    std::size_t cg_recovered = 0, lies = 0, cg_extra = 0;
    for (std::size_t t = 0; t < opt.trainings; ++t) {
      solver::ConjugateGradient2D cg(problem);
      cg.step(cg_base / 2);
      mh5::File ckpt = cg.checkpoint();
      core::Corrupter(flips_config(flips, 17 * t + flips)).corrupt(ckpt);
      auto resumed = solver::ConjugateGradient2D::from_checkpoint(ckpt);
      const std::size_t used = resumed.run_until(tol, 20 * cg_base);
      const double truth = resumed.true_residual();
      if (truth <= 100 * tol) {
        ++cg_recovered;
        const std::size_t remaining_clean = cg_base - cg_base / 2;
        cg_extra += used > remaining_clean ? used - remaining_clean : 0;
      }
      // "Lies": internal signal says converged but the truth is far off.
      if (resumed.residual() <= tol && truth > 100 * tol) ++lies;
    }
    table.add_row({"cg", std::to_string(flips), std::to_string(opt.trainings),
                   std::to_string(cg_recovered),
                   cg_recovered
                       ? format_fixed(static_cast<double>(cg_extra) /
                                          static_cast<double>(cg_recovered),
                                      0)
                       : "-",
                   std::to_string(lies)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "expected shape: jacobi recovers from every flip count (fixed-point "
      "contraction repairs the state); cg increasingly finishes with an "
      "internal residual that no longer matches the true one.\n");
  return 0;
}
