// Ablation (paper Discussion VI.1): N-EV detection would make DL platforms
// "virtually unbreakable".
//
// Corrupt checkpoints with the critical bit INCLUDED (the collapse regime of
// Table IV), then resume (a) unguarded, (b) with the Zero-repair guard,
// (c) with the Clamp-repair guard. The guard should eliminate essentially
// all collapses and restore near-baseline accuracy.
//
// Each (flips, mode) cell's trials fan out on core::TrialScheduler
// (--jobs N); per-trial outcomes land in index slots and aggregates are
// reduced in index order, so the table is bitwise independent of --jobs.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "core/protection.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv, [] {
    BenchOptions d = bench::trained_defaults();
    d.trainings = 6;
    d.resume_epochs = 1;  // collapse shows in the first resumed epoch
    return d;
  }());
  bench::print_banner(
      "Ablation: N-EV guard vs critical-bit corruption (chainer/alexnet)",
      opt);

  bench::TrialRows trials_out(opt.trials_out, "",
                              bench::bench_fingerprint(opt, "ablation_nev_guard"));

  core::ExperimentRunner runner(bench::make_config(opt, "chainer", "alexnet"));
  const nn::TrainResult clean =
      runner.resume_training(runner.restart_checkpoint(), opt.resume_epochs);

  struct Mode {
    const char* label;
    bool guard;
    core::RepairAction action;
  };
  const std::vector<Mode> modes = {
      {"unguarded", false, core::RepairAction::Zero},
      {"guard: zero", true, core::RepairAction::Zero},
      {"guard: clamp", true, core::RepairAction::Clamp},
  };

  core::TextTable table({"mode", "bit-flips", "trainings", "collapsed",
                         "avg accuracy", "clean accuracy"});

  for (const std::uint64_t flips : {100u, 1000u}) {
    for (const Mode& mode : modes) {
      const std::string cell =
          "ablation/" + std::to_string(flips) + "/" + mode.label;
      struct TrialResult {
        std::uint8_t collapsed = 0;
        double accuracy = 0.0;
      };
      std::vector<TrialResult> outcomes(opt.trainings);
      std::vector<Json> rows(opt.trainings);
      bench::make_scheduler(opt, cell).run(
          opt.trainings, [&](const core::TrialContext& trial) {
            mh5::File ckpt = runner.restart_checkpoint();
            core::CorrupterConfig cc;
            cc.injection_attempts = static_cast<double>(flips);
            cc.corruption_mode = core::CorruptionMode::BitRange;
            cc.first_bit = 0;
            cc.last_bit = 63;  // critical bit INCLUDED
            cc.seed = trial.seed;
            core::Corrupter(cc).corrupt(ckpt);
            if (mode.guard) {
              core::GuardConfig gc;
              gc.action = mode.action;
              core::guard_checkpoint(ckpt, gc);
            }
            const nn::TrainResult res =
                runner.resume_training(ckpt, opt.resume_epochs);
            outcomes[trial.index] = {res.collapsed ? std::uint8_t{1}
                                                   : std::uint8_t{0},
                                     res.final_accuracy};
            if (trials_out.enabled()) {
              Json row = Json::object();
              row["cell"] = cell;
              row["trial"] = trial.index;
              row["seed"] = std::to_string(trial.seed);
              row["collapsed"] = res.collapsed;
              row["final_accuracy"] = res.final_accuracy;
              rows[trial.index] = std::move(row);
            }
          });
      trials_out.flush_cell(rows);
      std::size_t collapsed = 0;
      double acc_sum = 0.0;
      std::size_t acc_n = 0;
      for (const TrialResult& r : outcomes) {
        if (r.collapsed) {
          ++collapsed;
        } else {
          acc_sum += r.accuracy;
          ++acc_n;
        }
      }
      table.add_row(
          {mode.label, std::to_string(flips), std::to_string(opt.trainings),
           std::to_string(collapsed),
           acc_n ? format_fixed(100.0 * acc_sum / static_cast<double>(acc_n),
                                1)
                 : "-",
           format_fixed(100.0 * clean.final_accuracy, 1)});
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "expected shape: unguarded trainings collapse at high rates; both "
      "guard variants remove (nearly) all collapses and keep accuracy near "
      "the clean baseline — the paper's 'virtually unbreakable' claim.\n");
  trials_out.commit();
  return 0;
}
