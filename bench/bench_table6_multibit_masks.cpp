// Table VI: multi-bit masks applied to ResNet50 training across frameworks.
//
// The five masks come from the DRAM field study the paper cites
// (Bautista-Gomez et al., SC'16). Each mask is applied to 10 weights per
// training; AvgI-Acc is the average initial accuracy over the trainings that
// did not collapse, and N-EV counts the collapsed ones.
//
// Trials within a mask cell are independent, so each cell fans out on
// core::TrialScheduler (--jobs N); per-trial seeds come from
// trial_seed(campaign, index), making --jobs 8 bitwise-identical to
// --jobs 1 (verify with --trials-out and diff). The error-free baseline is
// deterministic and runs once, outside the scheduler.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "frameworks/framework.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  bench::print_banner("Table VI: multi-bit masks on ResNet50", opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from,
                              bench::bench_fingerprint(opt, "table6"));

  struct MaskRow {
    int bits;
    const char* mask;  // empty = error-free baseline
  };
  const std::vector<MaskRow> masks = {
      {0, ""},          {3, "10001010"}, {4, "01101010"},
      {4, "10110010"},  {5, "11110001"}, {6, "11101101"},
  };

  core::TextTable table(
      {"bits", "mask", "framework", "AvgI-Acc", "N-EV", "trainings"});

  for (const auto& framework : fw::framework_names()) {
    core::ExperimentRunner runner(
        bench::make_config(opt, framework, "resnet50"));
    // Train the baseline and snapshot the restart checkpoint before the
    // fan-out, so trials start from a warm immutable cache.
    runner.restart_checkpoint();
    for (const auto& row : masks) {
      const bool baseline = row.bits == 0;
      const std::size_t trials = baseline ? 1 : opt.trainings;
      const std::string cell =
          framework + "/resnet50/mask" + (baseline ? "baseline" : row.mask);
      std::vector<std::uint8_t> collapsed(trials, 0);
      std::vector<double> accs(trials, 0.0);
      std::vector<Json> rows(trials);
      bench::make_scheduler(opt, cell).run(
          trials, [&](const core::TrialContext& trial) {
            if (const Json* p = trials_out.prior(cell, trial.index)) {
              collapsed[trial.index] = p->at("collapsed").as_bool() ? 1 : 0;
              if (!collapsed[trial.index])
                // One resumed epoch, so final == first-epoch accuracy.
                accs[trial.index] = p->at("final_accuracy").as_double();
              return;
            }
            mh5::File ckpt = runner.restart_checkpoint();
            Json log;
            std::size_t seg = 0;
            if (!baseline) {
              core::CorrupterConfig cc;
              cc.corruption_mode = core::CorruptionMode::BitMask;
              cc.bit_mask = row.mask;
              cc.injection_attempts = 10;  // 10 weights/training (paper)
              cc.seed = trial.seed;
              core::Corrupter corrupter(cc);
              const core::InjectionReport rep = corrupter.corrupt(ckpt);
              log = rep.log.to_json();
              // 10 random weights scatter across layers; the shallowest one
              // bounds the reusable prefix (often 0 — then this is a no-op).
              if (opt.prefix_reuse) seg = runner.entry_segment(rep.log);
            }
            const nn::TrainResult res =
                runner.resume_training_from_segment(ckpt, seg, 1);
            collapsed[trial.index] = res.collapsed ? 1 : 0;
            if (!res.collapsed)
              accs[trial.index] = res.epochs.front().test_accuracy;
            if (trials_out.enabled()) {
              Json r = Json::object();
              r["cell"] = cell;
              r["trial"] = trial.index;
              r["seed"] = std::to_string(trial.seed);
              r["collapsed"] = res.collapsed;
              r["final_accuracy"] = res.final_accuracy;
              r["log"] = log;
              rows[trial.index] = std::move(r);
            }
          });
      trials_out.flush_cell(cell, rows);
      double acc_sum = 0.0;
      std::size_t acc_count = 0, nev = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        if (collapsed[t]) {
          ++nev;  // excluded from the average, as in the paper
        } else {
          acc_sum += accs[t];
          ++acc_count;
        }
      }
      const double avg =
          acc_count > 0 ? 100.0 * acc_sum / static_cast<double>(acc_count)
                        : 0.0;
      table.add_row({std::to_string(row.bits),
                     baseline ? "00000000" : row.mask, framework,
                     format_fixed(avg, 1), std::to_string(nev),
                     std::to_string(trials)});
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: masks applied in mantissa/low exponent bits leave "
      "accuracy near baseline; occasional N-EV when a mask lands in high "
      "exponent bits, more often for denser masks.\n");
  trials_out.commit();
  return 0;
}
