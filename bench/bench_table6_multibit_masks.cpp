// Table VI: multi-bit masks applied to ResNet50 training across frameworks.
//
// The five masks come from the DRAM field study the paper cites
// (Bautista-Gomez et al., SC'16). Each mask is applied to 10 weights per
// training; AvgI-Acc is the average initial accuracy over the trainings that
// did not collapse, and N-EV counts the collapsed ones.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "frameworks/framework.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  bench::print_banner("Table VI: multi-bit masks on ResNet50", opt);

  struct MaskRow {
    int bits;
    const char* mask;  // empty = error-free baseline
  };
  const std::vector<MaskRow> masks = {
      {0, ""},          {3, "10001010"}, {4, "01101010"},
      {4, "10110010"},  {5, "11110001"}, {6, "11101101"},
  };

  core::TextTable table(
      {"bits", "mask", "framework", "AvgI-Acc", "N-EV", "trainings"});

  for (const auto& framework : fw::framework_names()) {
    core::ExperimentRunner runner(
        bench::make_config(opt, framework, "resnet50"));
    for (const auto& row : masks) {
      double acc_sum = 0.0;
      std::size_t acc_count = 0, nev = 0;
      for (std::size_t t = 0; t < opt.trainings; ++t) {
        mh5::File ckpt = runner.restart_checkpoint();
        if (row.bits > 0) {
          core::CorrupterConfig cc;
          cc.corruption_mode = core::CorruptionMode::BitMask;
          cc.bit_mask = row.mask;
          cc.injection_attempts = 10;  // 10 weights per training (paper)
          cc.seed = opt.seed * 31 + t * 7 + static_cast<std::uint64_t>(row.bits);
          core::Corrupter corrupter(cc);
          corrupter.corrupt(ckpt);
        }
        const nn::TrainResult res = runner.resume_training(ckpt, 1);
        if (res.collapsed) {
          ++nev;  // excluded from the average, as in the paper
        } else {
          acc_sum += res.epochs.front().test_accuracy;
          ++acc_count;
        }
        if (row.bits == 0) break;  // baseline is deterministic; run once
      }
      const double avg =
          acc_count > 0 ? 100.0 * acc_sum / static_cast<double>(acc_count)
                        : 0.0;
      table.add_row({std::to_string(row.bits),
                     row.bits == 0 ? "00000000" : row.mask, framework,
                     format_fixed(avg, 1), std::to_string(nev),
                     std::to_string(row.bits == 0 ? 1 : opt.trainings)});
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: masks applied in mantissa/low exponent bits leave "
      "accuracy near baseline; occasional N-EV when a mask lands in high "
      "exponent bits, more often for denser masks.\n");
  return 0;
}
