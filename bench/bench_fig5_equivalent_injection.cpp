// Figure 5: equivalent injection in PyTorch and TensorFlow.
//
// Replays the Chainer/AlexNet per-layer injection sequence (generated here,
// or loaded from bench_fig4's saved logs when present) at the equivalent
// location of PyTorch and TensorFlow checkpoints, then resumes training.
// The paper finds the replayed flips are absorbed in both frameworks.
//
// The per-layer replays fan out on core::TrialScheduler (--jobs N): one
// trial per layer, results in index slots, table rows emitted in layer
// order — output is bitwise independent of --jobs.
#include <filesystem>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "core/equivalent.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner(
      "Figure 5: equivalent injection replayed in pytorch/tensorflow", opt);
  bench::TrialRows trials_out(opt.trials_out, "",
                              bench::bench_fingerprint(opt, "fig5"));

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  // Source: Chainer logs (one per layer), regenerated if fig4 didn't run.
  core::ExperimentRunner source(bench::make_config(opt, "chainer", "alexnet"));
  auto source_model = source.make_model();
  core::ModelContext source_ctx = source.make_context(*source_model);

  std::map<std::string, core::InjectionLog> logs;
  for (const auto& [label, layer] : layers) {
    const std::string path = "fig4_log_" + layer + ".json";
    if (std::filesystem::exists(path)) {
      logs[layer] = core::InjectionLog::load(path);
      continue;
    }
    mh5::File ckpt = source.restart_checkpoint();
    core::CorrupterConfig cc;
    cc.injection_attempts = 1000;
    cc.corruption_mode = core::CorruptionMode::BitRange;
    cc.first_bit = 0;
    cc.last_bit = 61;
    cc.use_random_locations = false;
    cc.locations_to_corrupt = {"predictor/" + layer};
    cc.seed = opt.seed * 97;
    core::Corrupter corrupter(cc);
    core::InjectionReport rep = corrupter.corrupt(ckpt, &source_ctx);
    rep.log.set_meta("framework", "chainer");
    rep.log.set_meta("model", "alexnet");
    logs[layer] = std::move(rep.log);
  }

  for (const std::string target_fw : {"pytorch", "tensorflow"}) {
    core::ExperimentRunner target(
        bench::make_config(opt, target_fw, "alexnet"));
    const std::size_t epochs =
        target.config().total_epochs - target.config().restart_epoch;

    std::printf("--- panel %s (accuracy per epoch)\n", target_fw.c_str());
    core::TextTable table([&] {
      std::vector<std::string> hdr = {"series"};
      for (std::size_t e = 0; e < epochs; ++e)
        hdr.push_back("e" +
                      std::to_string(target.config().restart_epoch + e));
      return hdr;
    }());

    {
      const nn::TrainResult& clean = target.clean_resume();
      std::vector<std::string> row = {"error-free"};
      for (const auto& s : clean.epochs)
        row.push_back(format_fixed(100.0 * s.test_accuracy, 1));
      while (row.size() < epochs + 1) row.push_back("-");
      table.add_row(row);
    }

    auto target_model = target.make_model();
    struct LayerResult {
      std::size_t replayed = 0;
      std::vector<double> acc;
    };
    std::vector<LayerResult> results(layers.size());
    std::vector<Json> rows(layers.size());
    const std::string cell = "fig5/" + target_fw;
    bench::make_scheduler(opt, cell).run(
        layers.size(), [&](const core::TrialContext& trial) {
          const std::string& layer = layers[trial.index].second;
          mh5::File ckpt = target.restart_checkpoint();
          const core::ReplayStats stats = core::replay_injection_log(
              logs.at(layer), ckpt, *target_model, target.adapter(),
              core::ReplayMode::SameLayerBit, trial.seed);
          const nn::TrainResult res = target.resume_training(ckpt);
          LayerResult& slot = results[trial.index];
          slot.replayed = stats.replayed;
          for (const auto& s : res.epochs) slot.acc.push_back(s.test_accuracy);
          if (trials_out.enabled()) {
            Json row = Json::object();
            row["cell"] = cell;
            row["trial"] = trial.index;
            row["seed"] = std::to_string(trial.seed);
            row["layer"] = layer;
            row["replayed"] = stats.replayed;
            row["final_accuracy"] = res.final_accuracy;
            rows[trial.index] = std::move(row);
          }
          std::printf(".");
          std::fflush(stdout);
        });
    trials_out.flush_cell(rows);
    for (std::size_t i = 0; i < layers.size(); ++i) {
      std::vector<std::string> row = {layers[i].first + " (" +
                                      std::to_string(results[i].replayed) +
                                      " flips)"};
      for (const double a : results[i].acc)
        row.push_back(format_fixed(100.0 * a, 1));
      while (row.size() < epochs + 1) row.push_back("-");
      table.add_row(row);
    }
    std::printf("\n%s\n", table.str().c_str());
  }
  std::printf(
      "paper shape: the same per-layer bit-flip sequences, replayed at "
      "equivalent locations, are absorbed: no degradation in either target "
      "framework.\n");
  trials_out.commit();
  return 0;
}
