// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md section 4). Defaults are scaled down from the
// paper (Summit-scale: 250 trainings/cell, 100 epochs, full CIFAR-10) to
// single-CPU sizes; every knob is overridable:
//
//   --trainings=N      trainings per experiment cell
//   --train-images=N   synthetic CIFAR-10 training images
//   --test-images=N    synthetic CIFAR-10 test images
//   --width=N          base channel width multiplier applied to all models
//   --total-epochs=N   full training length (paper: 100)
//   --restart-epoch=N  checkpointed epoch that gets corrupted (paper: 20)
//   --resume-epochs=N  epochs trained after the corrupted restart
//   --seed=N           master seed
//   --jobs=N           trials in flight per experiment cell (campaign
//                      fan-out via core::TrialScheduler; 1 = serial, the
//                      default — and bitwise-identical to any other value)
//   --json-out=PATH    enable the obs metrics registry and write its snapshot
//                      as JSON to PATH when the bench exits
//   --trace-out=PATH   enable span tracing and write Chrome trace JSON to
//                      PATH when the bench exits (open in chrome://tracing)
//   --trials-out=PATH  write one JSON line per trial (outcome + injection
//                      log) — the determinism artifact: identical across
//                      --jobs values by construction
//   --resume-from=PATH resume an interrupted campaign from a previous
//                      --trials-out file: trial indices already present are
//                      skipped (their rows re-emitted verbatim) and only the
//                      missing ones run. Per-trial splitmix64 seeds are pure
//                      functions of (--seed, cell, index), so a resumed
//                      file is bitwise-identical to an uninterrupted run.
//                      May name the same path as --trials-out. Torn trailing
//                      lines (a campaign killed mid-write) are skipped with
//                      a warning; rows stamped with a different campaign
//                      fingerprint (see "fp" below) are refused outright.
//   --fleet-manifest=PATH
//                      fleet-capable benches (table4, fig4): write the
//                      campaign manifest for ckptfi-fleetd to PATH and exit
//                      without running any trials (docs/FLEET.md).
//   --prefix-reuse=on|off
//                      layer-targeted benches: reuse cached activation
//                      prefixes for trial groups that share an injected
//                      layer (core::PrefixCache). Bitwise-identical to a
//                      full recompute; default on, env CKPTFI_PREFIX_REUSE
//                      is the global escape hatch.
//   --progress=N       heartbeat: print trials done/total, p50 trial time
//                      and ETA to stderr every ~N seconds while a campaign
//                      runs (0 = off, the default)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "core/trial_log.hpp"
#include "obs/obs.hpp"
#include "tensor/kernels.hpp"
#include "util/crc32.hpp"

namespace ckptfi::bench {

/// Process-wide default for --prefix-reuse: on unless CKPTFI_PREFIX_REUSE is
/// set to off/0/false (the escape hatch the CI matrix flips).
inline bool default_prefix_reuse() {
  const char* e = std::getenv("CKPTFI_PREFIX_REUSE");
  if (e == nullptr) return true;
  const std::string v = e;
  return !(v == "off" || v == "0" || v == "false");
}

struct BenchOptions {
  std::size_t trainings = 6;
  std::size_t train_images = 160;
  std::size_t test_images = 80;
  std::size_t width = 4;
  std::size_t total_epochs = 6;
  std::size_t restart_epoch = 2;
  std::size_t resume_epochs = 1;
  std::uint64_t seed = 42;
  std::size_t jobs = 1;   ///< campaign fan-out (trials in flight per cell)
  std::size_t progress = 0;  ///< heartbeat period in seconds (0 = silent)
  bool prefix_reuse = default_prefix_reuse();  ///< cached-prefix trial entry
  std::string json_out;   ///< metrics snapshot destination ("" = don't emit)
  std::string trace_out;  ///< Chrome trace destination ("" = don't record)
  std::string trials_out; ///< per-trial JSONL destination ("" = don't emit)
  std::string resume_from;  ///< prior trials JSONL to resume from ("" = none)
  std::string fleet_manifest;  ///< manifest export path ("" = run normally)

  /// Extra bench-specific --key=value string options: parse fills the bound
  /// strings and treats the keys as known.
  using Extras = std::vector<std::pair<std::string, std::string*>>;

  /// Parse --key=value args over `defaults`; unknown keys abort with a
  /// usage message. Benches whose story needs a genuinely trained baseline
  /// (accuracy-degradation experiments) pass larger defaults.
  static BenchOptions parse(int argc, char** argv, BenchOptions defaults,
                            const Extras& extras = {});
  static BenchOptions parse(int argc, char** argv) {
    return parse(argc, argv, BenchOptions{});
  }
};

/// Every bench funnels through parse(), so hooking the metrics/trace dump
/// here wires observability into all of them at once: when --json-out or
/// --trace-out is given, the matching obs facility is enabled and an atexit
/// handler writes the file after the bench's tables have printed.
namespace detail {
inline std::string g_json_out;   // set once in parse, read at exit
inline std::string g_trace_out;

inline void write_obs_outputs() {
  if (!g_json_out.empty()) {
    std::ofstream out(g_json_out, std::ios::trunc);
    if (out) {
      Json snap = obs::Registry::global().to_json();
      Json events = Json::array();
      for (auto& e : obs::EventLog::global().events()) {
        events.push_back(std::move(e));
      }
      snap["events"] = std::move(events);
      out << snap.dump(2) << "\n";
    } else {
      std::fprintf(stderr, "bench: cannot write metrics to '%s'\n",
                   g_json_out.c_str());
    }
  }
  if (!g_trace_out.empty()) {
    // save() throws on an unwritable path; an exception escaping an atexit
    // handler would terminate(), so report and carry on instead.
    try {
      obs::TraceRecorder::global().save(g_trace_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
    }
  }
}
}  // namespace detail

inline BenchOptions BenchOptions::parse(int argc, char** argv,
                                        BenchOptions defaults,
                                        const Extras& extras) {
  BenchOptions o = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "usage: %s [--key=value ...]\n", argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    bool is_extra = false;
    for (const auto& [ekey, slot] : extras) {
      if (key == ekey) {
        *slot = arg.substr(eq + 1);
        is_extra = true;
        break;
      }
    }
    if (is_extra) continue;
    if (key == "trials-out") {
      o.trials_out = arg.substr(eq + 1);
      continue;
    }
    if (key == "resume-from") {
      o.resume_from = arg.substr(eq + 1);
      continue;
    }
    if (key == "fleet-manifest") {
      o.fleet_manifest = arg.substr(eq + 1);
      continue;
    }
    if (key == "prefix-reuse") {
      const std::string v = arg.substr(eq + 1);
      o.prefix_reuse = !(v == "off" || v == "0" || v == "false");
      continue;
    }
    if (key == "json-out" || key == "trace-out") {
      const std::string path = arg.substr(eq + 1);
      if (key == "json-out") {
        o.json_out = path;
        detail::g_json_out = path;
        obs::set_metrics_enabled(true);
        obs::set_events_enabled(true);  // run_start + domain events ride
                                        // along in the snapshot
      } else {
        o.trace_out = path;
        detail::g_trace_out = path;
        obs::set_tracing_enabled(true);
      }
      static bool registered = false;
      if (!registered) {
        registered = true;
        std::atexit(detail::write_obs_outputs);
      }
      continue;
    }
    // Everything below is numeric. stoull throws std::invalid_argument on
    // junk and std::out_of_range past 2^64 — either one escaping main() is
    // an abort with no hint which flag was wrong, so translate both into a
    // usage error that names the flag.
    std::size_t val = 0;
    try {
      const std::string text = arg.substr(eq + 1);
      std::size_t used = 0;
      val = static_cast<std::size_t>(std::stoull(text, &used));
      if (used != text.size()) throw std::invalid_argument(text);
    } catch (const std::exception&) {
      std::fprintf(stderr, "bench: --%s wants a number, got '%s'\n",
                   key.c_str(), arg.c_str() + eq + 1);
      std::exit(2);
    }
    if (key == "trainings") {
      o.trainings = val;
    } else if (key == "train-images") {
      o.train_images = val;
    } else if (key == "test-images") {
      o.test_images = val;
    } else if (key == "width") {
      o.width = val;
    } else if (key == "total-epochs") {
      o.total_epochs = val;
    } else if (key == "restart-epoch") {
      o.restart_epoch = val;
    } else if (key == "resume-epochs") {
      o.resume_epochs = val;
    } else if (key == "seed") {
      o.seed = val;
    } else if (key == "jobs") {
      o.jobs = val == 0 ? 1 : val;
    } else if (key == "progress") {
      o.progress = val;
    } else {
      std::fprintf(stderr, "unknown option --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return o;
}

/// Per-cell campaign seed: the master seed mixed with the cell's identity
/// string ("framework/model/rate"), so every cell fans out decorrelated
/// trial streams while staying a pure function of (--seed, cell) — never of
/// --jobs or scheduling. Delegates to the campaign library so bench and
/// fleet-worker seeds can never drift apart.
inline std::uint64_t campaign_seed(const BenchOptions& o,
                                   const std::string& cell) {
  return core::campaign_cell_seed(o.seed, cell);
}

/// Scheduler for one experiment cell's trial fan-out.
inline core::TrialScheduler make_scheduler(const BenchOptions& o,
                                           const std::string& cell) {
  core::TrialScheduler::Config sc;
  sc.jobs = o.jobs;
  sc.campaign_seed = campaign_seed(o, cell);
  sc.progress_interval_s = static_cast<double>(o.progress);
  sc.progress_label = cell;
  return core::TrialScheduler(sc);
}

/// JSONL sink for --trials-out. Benches fill one Json row per trial into an
/// index-addressed vector while the campaign runs, then flush the cell in
/// index order — so the file is bitwise independent of --jobs scheduling.
///
/// With a --resume-from file, rows from the prior run are indexed by
/// (cell, trial): benches consult prior() to skip finished trials, and
/// flush_cell(cell, rows) re-emits a skipped trial's original line verbatim
/// — so a resumed file is byte-identical to an uninterrupted run's.
///
/// Crash-safety is core::TrialLogReader/TrialLogWriter's (see
/// src/core/trial_log.hpp): torn trailing lines in the resume file are
/// skipped, rows from a different campaign (mismatched "fp" fingerprint)
/// are refused, and output goes through `path + ".tmp"` + an atomic rename
/// at commit() — so resuming in place (--resume-from=X --trials-out=X)
/// cannot destroy the only copy of the prior artifact. The bench MUST call
/// commit() after its last flush_cell; exiting without it leaves only the
/// temp file (exactly what a crash would leave).
class TrialRows {
 public:
  explicit TrialRows(const std::string& path,
                     const std::string& resume_from = "",
                     const std::string& fp_hex = "")
      : fp_hex_(fp_hex) {
    if (!resume_from.empty()) {
      try {
        prior_.load(resume_from, fp_hex);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench: %s\n", e.what());
        std::exit(2);
      }
    }
    if (path.empty()) return;
    try {
      out_.open(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
      std::exit(2);
    }
  }

  bool enabled() const { return out_.is_open(); }

  /// The prior run's row for (cell, trial), or nullptr when it must run.
  const Json* prior(const std::string& cell, std::size_t trial) const {
    const core::TrialLogReader::Row* hit = prior_.find(cell, trial);
    return hit == nullptr ? nullptr : &hit->row;
  }

  void flush_cell(std::vector<Json>& rows) { flush_cell("", rows); }

  /// Flush one cell in index order, stamping the campaign fingerprint onto
  /// fresh rows. Null rows (trials skipped via prior()) fall back to the
  /// prior file's original line, byte for byte.
  void flush_cell(const std::string& cell, std::vector<Json>& rows) {
    if (!enabled()) return;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].is_null() && !cell.empty()) {
        const core::TrialLogReader::Row* hit = prior_.find(cell, i);
        if (hit != nullptr) {
          out_.write_line(hit->line);
          continue;
        }
      }
      core::stamp_fingerprint(rows[i], fp_hex_);
      out_.write_line(rows[i].dump());
    }
    out_.flush();
  }

  /// Rename the temp file onto the real path. Call once, after the last
  /// cell; exits with a diagnostic on I/O failure.
  void commit() {
    if (!enabled()) return;
    try {
      out_.commit();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
      std::exit(1);
    }
  }

 private:
  std::string fp_hex_;
  core::TrialLogReader prior_;
  core::TrialLogWriter out_;
};

/// Per-model width: ResNet50 has ~3x the layer count, so it gets half the
/// base width to keep bench wall-clock balanced across models. Delegates to
/// the campaign library (fleet workers size models the same way).
inline std::size_t model_width(const BenchOptions& o,
                               const std::string& model) {
  return core::campaign_model_width(o.width, model);
}

/// The campaign identity behind a bench invocation: the bench name plus
/// every BenchOptions field that can change a trial row's bytes. Feeds both
/// the row fingerprint ("fp") and the fleet manifest.
inline core::CampaignOptions campaign_options(
    const BenchOptions& o, const std::string& bench,
    const std::string& mode = "", const std::vector<std::string>& layers = {}) {
  core::CampaignOptions c;
  c.bench = bench;
  c.mode = mode.empty() ? "train" : mode;
  c.layers = layers;
  c.trainings = o.trainings;
  c.train_images = o.train_images;
  c.test_images = o.test_images;
  c.width = o.width;
  c.total_epochs = o.total_epochs;
  c.restart_epoch = o.restart_epoch;
  c.resume_epochs = o.resume_epochs;
  c.seed = o.seed;
  c.prefix_reuse = o.prefix_reuse;
  return c;
}

/// Campaign fingerprint for a bench's rows (8 hex chars, the "fp" field).
inline std::string bench_fingerprint(const BenchOptions& o,
                                     const std::string& bench,
                                     const std::string& mode = "",
                                     const std::vector<std::string>& layers =
                                         {}) {
  return campaign_options(o, bench, mode, layers).fingerprint_hex();
}

/// --fleet-manifest handling for fleet-capable benches: write the campaign
/// manifest and return true (caller exits 0 without running trials).
inline bool export_fleet_manifest(const BenchOptions& o,
                                  const core::Campaign& campaign) {
  if (o.fleet_manifest.empty()) return false;
  std::ofstream out(o.fleet_manifest, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write --fleet-manifest '%s'\n",
                 o.fleet_manifest.c_str());
    std::exit(2);
  }
  out << core::campaign_manifest(campaign).dump(2) << "\n";
  std::size_t trials = 0;
  for (const core::CampaignCell& c : campaign.cells()) trials += c.trials;
  std::printf(
      "wrote fleet manifest '%s' (campaign %s: %zu cells, %zu trials) — "
      "run it with ckptfi-fleetd + ckptfi-worker\n",
      o.fleet_manifest.c_str(),
      campaign.options().fingerprint_hex().c_str(), campaign.cells().size(),
      trials);
  return true;
}

/// Defaults for benches that measure accuracy degradation: models must be
/// meaningfully above chance, which needs more data/width/epochs.
inline BenchOptions trained_defaults() {
  BenchOptions o;
  o.trainings = 3;
  o.train_images = 320;
  o.test_images = 160;
  o.width = 6;
  o.total_epochs = 8;
  o.restart_epoch = 3;
  o.resume_epochs = 0;  // resume to total_epochs
  return o;
}

inline core::ExperimentConfig make_config(const BenchOptions& o,
                                          const std::string& framework,
                                          const std::string& model,
                                          int precision_bits = 64) {
  core::ExperimentConfig cfg;
  cfg.framework = framework;
  cfg.model = model;
  cfg.model_cfg.width = model_width(o, model);
  cfg.data_cfg.num_train = o.train_images;
  cfg.data_cfg.num_test = o.test_images;
  cfg.total_epochs = o.total_epochs;
  cfg.restart_epoch = o.restart_epoch;
  cfg.precision_bits = precision_bits;
  cfg.seed = o.seed;
  return cfg;
}

/// The run-start obs event, stamped with the active kernel backend so a
/// metrics/trace artifact records which compute path produced it. Benches
/// that print their own banner (solver extension, micro harnesses) still
/// call this — ckptfi-lint's obs-bench-conventions rule insists on it.
inline void emit_run_start(const std::string& what, const BenchOptions& o) {
  Json f = Json::object();
  f["bench"] = what;
  f["kernels.backend"] = kernel_backend_name();
  f["kernels.simd_isa"] = simd_isa_name();
  f["kernels.gemm_precision"] = gemm_precision_name();
  f["jobs"] = o.jobs;
  f["seed"] = std::to_string(o.seed);
  obs::emit_event("run_start", std::move(f));
}

/// Header block naming the experiment and the scale it runs at; also stamps
/// the run_start event.
inline void print_banner(const std::string& what, const BenchOptions& o) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf(
      "scale: %zu trainings/cell, %zu train images, width %zu, "
      "restart epoch %zu -> resume %zu epoch(s), %zu job(s), "
      "prefix-reuse %s "
      "(paper: 250 trainings, CIFAR-10 50k, full-width models, epoch 20)\n\n",
      o.trainings, o.train_images, o.width, o.restart_epoch, o.resume_epochs,
      o.jobs, o.prefix_reuse ? "on" : "off");
  emit_run_start(what, o);
}

}  // namespace ckptfi::bench
