// Microbenchmarks of the compute kernels across the three backend tiers.
//
// Every benchmark comes in a tier set pinning one backend via
// set_kernel_backend (see docs/KERNELS.md): the reference direct-loop
// kernels, the blocked/arena fast GEMM and im2col+GEMM convolution, and the
// explicitly vectorized simd microkernels — all measured through the
// dispatched entry points exactly as CKPTFI_KERNELS selects them. Shapes
// cover the sizes the paper's models actually run — LeNet/AlexNet-scale
// conv blocks and classifier GEMMs — plus tiny shapes, where the fast
// dispatcher's flop threshold routes straight back to naive and that pair
// should tie. A rectangular GEMM sweep (MLP / LeNet / ResNet-ish
// conv-as-GEMM panels) times all three tiers on the shapes behind the
// EXPERIMENTS.md simd-speedup table, and an fp16 phase times the
// mixed-precision GEMM path (fp16 storage panels, fp32 accumulate) against
// the fp64 tiers on the same shapes.
//
// Each benchmark also reports the kernel obs instrumentation it moved
// (kernels.gemm_time / kernels.im2col_time histograms, arena gauges) from
// one untimed probe run, so the counters never sit in the hot loop.
//
// Pass --json-out=PATH (stripped before Google Benchmark sees the args) to
// enable the metrics registry for the whole run and dump its snapshot as
// JSON at exit — the EXPERIMENTS.md speedup table comes from this binary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/micro_common.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "obs/obs.hpp"
#include "obs/probes.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/rng.hpp"

using namespace ckptfi;

namespace {

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.vec()) v = rng.normal();
  return t;
}

/// Publish the arena gauges after an untimed probe run of `fn`, so a
/// --json-out snapshot records the scratch footprint next to the timings.
template <typename Fn>
void probe_arena(benchmark::State& state, Fn&& fn) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  fn();
  Workspace& ws = Workspace::tls();
  state.counters["arena_bytes"] =
      benchmark::Counter(static_cast<double>(ws.bytes_reserved()));
  state.counters["arena_high_water"] =
      benchmark::Counter(static_cast<double>(ws.high_water()));
  obs::set_metrics_enabled(was_enabled);
}

// --------------------------------------------------------------------------
// GEMM: C[m,n] = A[m,k] * B[k,n]. Arg is the square size; 8 covers the
// under-threshold tiny case, 256 the classifier layers.

template <KernelBackend Backend>
void gemm_bench(benchmark::State& state) {
  set_kernel_backend(Backend);
  const auto s = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = random_tensor({s, s}, rng);
  const Tensor b = random_tensor({s, s}, rng);
  Tensor c;
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * s * s * s));
  if (Backend == KernelBackend::kFast)
    probe_arena(state, [&] { matmul(a, b, c); });
}

void BM_GemmNaive(benchmark::State& state) {
  gemm_bench<KernelBackend::kNaive>(state);
}
BENCHMARK(BM_GemmNaive)->Arg(8)->Arg(64)->Arg(256);

void BM_GemmFast(benchmark::State& state) {
  gemm_bench<KernelBackend::kFast>(state);
}
BENCHMARK(BM_GemmFast)->Arg(8)->Arg(64)->Arg(256);

void BM_GemmSimd(benchmark::State& state) {
  gemm_bench<KernelBackend::kSimd>(state);
}
BENCHMARK(BM_GemmSimd)->Arg(8)->Arg(64)->Arg(256);

// --------------------------------------------------------------------------
// Rectangular GEMM sweep over the shapes the repro's models actually hit,
// one benchmark per tier per shape — the EXPERIMENTS.md simd-speedup table:
//   Arg 0: mlp    — [16,256]x[256,256], a Dense layer at bench width
//   Arg 1: lenet  — [16,400]x[400,120], LeNet's fc1 classifier GEMM
//   Arg 2: resnet — [64,576]x[576,196], a 3x3x64 conv block as W x col

struct GemmShape {
  std::size_t m, k, n;
};

GemmShape gemm_shape(std::int64_t idx) {
  static const GemmShape shapes[] = {
      {16, 256, 256}, {16, 400, 120}, {64, 576, 196}};
  return shapes[idx];
}

template <KernelBackend Backend>
void gemm_sweep_bench(benchmark::State& state) {
  set_kernel_backend(Backend);
  const GemmShape s = gemm_shape(state.range(0));
  Rng rng(7);
  const Tensor a = random_tensor({s.m, s.k}, rng);
  const Tensor b = random_tensor({s.k, s.n}, rng);
  Tensor c;
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * s.m * s.k * s.n));
}

void BM_GemmSweepNaive(benchmark::State& state) {
  gemm_sweep_bench<KernelBackend::kNaive>(state);
}
BENCHMARK(BM_GemmSweepNaive)->Arg(0)->Arg(1)->Arg(2);

void BM_GemmSweepFast(benchmark::State& state) {
  gemm_sweep_bench<KernelBackend::kFast>(state);
}
BENCHMARK(BM_GemmSweepFast)->Arg(0)->Arg(1)->Arg(2);

void BM_GemmSweepSimd(benchmark::State& state) {
  gemm_sweep_bench<KernelBackend::kSimd>(state);
}
BENCHMARK(BM_GemmSweepSimd)->Arg(0)->Arg(1)->Arg(2);

// The mixed-precision GEMM path on the same sweep shapes: fp16 storage
// panels, fp32 FMA accumulate (MPGemmFI's shape), dispatched in front of
// the default backend exactly as CKPTFI_GEMM_PRECISION=fp16 would.
void BM_GemmSweepFp16(benchmark::State& state) {
  set_kernel_backend(KernelBackend::kSimd);
  set_gemm_precision(GemmPrecision::kFp16);
  const GemmShape s = gemm_shape(state.range(0));
  Rng rng(7);
  const Tensor a = random_tensor({s.m, s.k}, rng);
  const Tensor b = random_tensor({s.k, s.n}, rng);
  Tensor c;
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * s.m * s.k * s.n));
  set_gemm_precision(GemmPrecision::kFp64);
}
BENCHMARK(BM_GemmSweepFp16)->Arg(0)->Arg(1)->Arg(2);

// --------------------------------------------------------------------------
// Convolution forward/backward at three scales:
//   Arg 0: tiny   — 1x2x6x6,  co=2, below the fast flop threshold
//   Arg 1: lenet  — 8x6x16x16, co=16 (the repro's LeNet block at width 6)
//   Arg 2: alex   — 8x16x16x16, co=32 (AlexNet mid-block at bench width)

struct ConvCase {
  std::size_t n, ci, hw, co;
};

ConvCase conv_case(std::int64_t idx) {
  static const ConvCase cases[] = {
      {1, 2, 6, 2}, {8, 6, 16, 16}, {8, 16, 16, 32}};
  return cases[idx];
}

void conv_inputs(const ConvCase& c, Tensor& x, Tensor& w, Tensor& b) {
  Rng rng(2);
  x = random_tensor({c.n, c.ci, c.hw, c.hw}, rng);
  w = random_tensor({c.co, c.ci, 3, 3}, rng);
  b = random_tensor({c.co}, rng);
}

template <KernelBackend Backend>
void conv_forward_bench(benchmark::State& state) {
  set_kernel_backend(Backend);
  const ConvCase c = conv_case(state.range(0));
  Tensor x, w, b, y;
  conv_inputs(c, x, w, b);
  const ConvSpec spec{3, 1, 1};
  for (auto _ : state) {
    conv2d_forward(x, w, b, spec, y);
    benchmark::DoNotOptimize(y.data());
  }
  const std::size_t ho = spec.out_extent(c.hw);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * c.n * c.co * ho * ho * c.ci * 9));
}

void BM_ConvForwardNaive(benchmark::State& state) {
  conv_forward_bench<KernelBackend::kNaive>(state);
}
BENCHMARK(BM_ConvForwardNaive)->Arg(0)->Arg(1)->Arg(2);

void BM_ConvForwardFast(benchmark::State& state) {
  conv_forward_bench<KernelBackend::kFast>(state);
  const ConvCase c = conv_case(state.range(0));
  Tensor x, w, b, y;
  conv_inputs(c, x, w, b);
  probe_arena(state,
              [&] { conv2d_forward(x, w, b, ConvSpec{3, 1, 1}, y); });
}
BENCHMARK(BM_ConvForwardFast)->Arg(0)->Arg(1)->Arg(2);

void BM_ConvForwardSimd(benchmark::State& state) {
  conv_forward_bench<KernelBackend::kSimd>(state);
}
BENCHMARK(BM_ConvForwardSimd)->Arg(0)->Arg(1)->Arg(2);

template <KernelBackend Backend>
void conv_backward_bench(benchmark::State& state) {
  set_kernel_backend(Backend);
  const ConvCase c = conv_case(state.range(0));
  Tensor x, w, b;
  conv_inputs(c, x, w, b);
  const ConvSpec spec{3, 1, 1};
  const std::size_t ho = spec.out_extent(c.hw);
  Rng rng(3);
  const Tensor dy = random_tensor({c.n, c.co, ho, ho}, rng);
  Tensor dx(x.shape()), dw(w.shape()), db({c.co});
  for (auto _ : state) {
    conv2d_backward(x, w, spec, dy, dx, dw, db);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * c.n * c.co * ho * ho * c.ci * 9));
}

void BM_ConvBackwardNaive(benchmark::State& state) {
  conv_backward_bench<KernelBackend::kNaive>(state);
}
BENCHMARK(BM_ConvBackwardNaive)->Arg(0)->Arg(1)->Arg(2);

void BM_ConvBackwardFast(benchmark::State& state) {
  conv_backward_bench<KernelBackend::kFast>(state);
}
BENCHMARK(BM_ConvBackwardFast)->Arg(0)->Arg(1)->Arg(2);

void BM_ConvBackwardSimd(benchmark::State& state) {
  conv_backward_bench<KernelBackend::kSimd>(state);
}
BENCHMARK(BM_ConvBackwardSimd)->Arg(0)->Arg(1)->Arg(2);

// --------------------------------------------------------------------------
// The transposed GEMMs the backward pass leans on, at classifier-layer size.

void BM_GemmAtNaive(benchmark::State& state) {
  Rng rng(4);
  const Tensor a = random_tensor({256, 128}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kNaive);
  for (auto _ : state) {
    matmul_at(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmAtNaive);

void BM_GemmAtFast(benchmark::State& state) {
  Rng rng(4);
  const Tensor a = random_tensor({256, 128}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kFast);
  for (auto _ : state) {
    matmul_at(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmAtFast);

void BM_GemmAtSimd(benchmark::State& state) {
  Rng rng(4);
  const Tensor a = random_tensor({256, 128}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kSimd);
  for (auto _ : state) {
    matmul_at(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmAtSimd);

void BM_GemmBtNaive(benchmark::State& state) {
  Rng rng(5);
  const Tensor a = random_tensor({128, 64}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kNaive);
  for (auto _ : state) {
    matmul_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBtNaive);

void BM_GemmBtFast(benchmark::State& state) {
  Rng rng(5);
  const Tensor a = random_tensor({128, 64}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kFast);
  for (auto _ : state) {
    matmul_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBtFast);

void BM_GemmBtSimd(benchmark::State& state) {
  Rng rng(5);
  const Tensor a = random_tensor({128, 64}, rng);
  const Tensor b = random_tensor({256, 64}, rng);
  Tensor c;
  set_kernel_backend(KernelBackend::kSimd);
  for (auto _ : state) {
    matmul_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBtSimd);

// --------------------------------------------------------------------------
// Probe overhead: one training step (forward + backward) of an MLP with and
// without an obs::Probes sink installed. "Off" is the instrumented-but-idle
// cost every unprobed training pays — one thread-local pointer load per
// container pass; "on" adds the per-layer stat recording. Each iteration
// uses a fresh Probes, so the "on" side also pays step-0 layout learning:
// an upper bound on the steady-state recording cost. The EXPERIMENTS.md
// probe-overhead snapshot comes from this pair.

void build_probe_mlp(nn::Sequential& net, Rng& rng) {
  net.emplace<nn::Dense>("fc1", 256, 256);
  net.emplace<nn::ReLU>("relu1");
  net.emplace<nn::Dense>("fc2", 256, 256);
  net.emplace<nn::ReLU>("relu2");
  net.emplace<nn::Dense>("fc3", 256, 10);
  net.init_params(rng);
}

void train_step(nn::Sequential& net, const Tensor& x, const Tensor& dy) {
  Tensor y = net.forward(x, /*training=*/true);
  benchmark::DoNotOptimize(y.data());
  Tensor dx = net.backward(dy);
  benchmark::DoNotOptimize(dx.data());
}

void BM_TrainStepProbesOff(benchmark::State& state) {
  Rng rng(6);
  nn::Sequential net("mlp");
  build_probe_mlp(net, rng);
  const Tensor x = random_tensor({16, 256}, rng);
  const Tensor dy = random_tensor({16, 10}, rng);
  set_kernel_backend(KernelBackend::kFast);
  for (auto _ : state) train_step(net, x, dy);
}
BENCHMARK(BM_TrainStepProbesOff);

void BM_TrainStepProbesOn(benchmark::State& state) {
  Rng rng(6);
  nn::Sequential net("mlp");
  build_probe_mlp(net, rng);
  const Tensor x = random_tensor({16, 256}, rng);
  const Tensor dy = random_tensor({16, 10}, rng);
  set_kernel_backend(KernelBackend::kFast);
  for (auto _ : state) {
    obs::Probes probes;
    probes.set_expected_steps(1);
    obs::Probes::Scope scope(probes);
    probes.begin_step(0);
    train_step(net, x, dy);
    benchmark::DoNotOptimize(probes.num_steps());
  }
}
BENCHMARK(BM_TrainStepProbesOn);

}  // namespace

int main(int argc, char** argv) {
  return ckptfi::bench_micro::run_main(argc, argv, "bench_micro_kernels");
}
