// Shared main() plumbing for the google-benchmark micro harnesses
// (bench_micro_injector / bench_micro_kernels / bench_micro_mh5).
//
// Google Benchmark aborts on flags it does not know, so --json-out=PATH is
// peeled off before benchmark::Initialize sees the args. The flag enables
// the obs metrics registry and the event log for the whole run, stamps a
// run_start event (so the artifact records which binary and kernel backend
// produced it), and dumps the registry snapshot — events riding along, as
// in bench/common.hpp — as JSON at exit.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "tensor/kernels.hpp"

namespace ckptfi::bench_micro {

namespace detail {
inline std::string g_json_out;  // set once in run_main, read at exit

inline void write_metrics_snapshot() {
  std::ofstream out(g_json_out, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write metrics to '%s'\n",
                 g_json_out.c_str());
    return;
  }
  Json snap = obs::Registry::global().to_json();
  Json events = Json::array();
  for (auto& e : obs::EventLog::global().events()) {
    events.push_back(std::move(e));
  }
  snap["events"] = std::move(events);
  out << snap.dump(2) << "\n";
}
}  // namespace detail

/// The whole micro-bench main: peel --json-out, stamp run_start, hand the
/// remaining args to Google Benchmark.
inline int run_main(int argc, char** argv, const char* bench_name) {
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      detail::g_json_out = arg.substr(std::string("--json-out=").size());
      obs::set_metrics_enabled(true);
      obs::set_events_enabled(true);
      std::atexit(detail::write_metrics_snapshot);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  Json fields = Json::object();
  fields["bench"] = bench_name;
  fields["kernels.backend"] = kernel_backend_name();
  fields["kernels.simd_isa"] = simd_isa_name();
  fields["kernels.gemm_precision"] = gemm_precision_name();
  obs::emit_event("run_start", std::move(fields));

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ckptfi::bench_micro
