// Microbenchmarks of the corrupter itself, including the ablations called
// out in DESIGN.md: NaN-filter retry cost, percentage-vs-count accounting,
// and location-targeted vs whole-file injection.
#include <benchmark/benchmark.h>

#include "bench/micro_common.hpp"
#include "core/corrupter.hpp"

using namespace ckptfi;

namespace {

mh5::File make_file(std::uint64_t elems_per_ds, std::size_t n_datasets,
                    mh5::DType dtype = mh5::DType::F64) {
  mh5::File f;
  Rng rng(7);
  for (std::size_t d = 0; d < n_datasets; ++d) {
    auto& ds = f.create_dataset("model/layer" + std::to_string(d) + "/W",
                                dtype, {elems_per_ds});
    for (std::uint64_t i = 0; i < elems_per_ds; ++i)
      ds.set_double(i, rng.normal(0.0, 0.05));
  }
  return f;
}

core::CorrupterConfig bit_range_cfg(std::uint64_t flips) {
  core::CorrupterConfig cc;
  cc.injection_attempts = static_cast<double>(flips);
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.seed = 99;
  return cc;
}

void BM_CorruptBitRange(benchmark::State& state) {
  mh5::File f = make_file(4096, 8);
  const auto flips = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    core::Corrupter corrupter(bit_range_cfg(flips));
    benchmark::DoNotOptimize(corrupter.corrupt(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flips));
}
BENCHMARK(BM_CorruptBitRange)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CorruptBitMask(benchmark::State& state) {
  mh5::File f = make_file(4096, 8);
  core::CorrupterConfig cc = bit_range_cfg(1000);
  cc.corruption_mode = core::CorruptionMode::BitMask;
  cc.bit_mask = "11101101";
  for (auto _ : state) {
    core::Corrupter corrupter(cc);
    benchmark::DoNotOptimize(corrupter.corrupt(f));
  }
}
BENCHMARK(BM_CorruptBitMask);

void BM_CorruptScaling(benchmark::State& state) {
  mh5::File f = make_file(4096, 8);
  core::CorrupterConfig cc = bit_range_cfg(1000);
  cc.corruption_mode = core::CorruptionMode::ScalingFactor;
  cc.scaling_factor = 4500.0;
  for (auto _ : state) {
    core::Corrupter corrupter(cc);
    benchmark::DoNotOptimize(corrupter.corrupt(f));
  }
}
BENCHMARK(BM_CorruptScaling);

// Ablation: the NaN filter's rejection-sampling cost. The aggressive range
// [52,63] frequently produces non-finite values, forcing retries.
void BM_NanFilter(benchmark::State& state) {
  const bool filter_on = state.range(0) != 0;
  mh5::File f = make_file(4096, 8);
  core::CorrupterConfig cc = bit_range_cfg(1000);
  cc.first_bit = 52;
  cc.last_bit = 63;
  cc.allow_nan_values = !filter_on;
  std::uint64_t retries = 0;
  for (auto _ : state) {
    core::Corrupter corrupter(cc);
    const core::InjectionReport rep = corrupter.corrupt(f);
    retries += rep.nan_retries;
  }
  state.counters["nan_retries_per_iter"] =
      static_cast<double>(retries) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_NanFilter)->Arg(0)->Arg(1);

// Ablation: percentage budgets must count every corruptible entry first.
void BM_ResolveAttempts(benchmark::State& state) {
  const bool percentage = state.range(0) != 0;
  mh5::File f = make_file(16384, 16);
  core::CorrupterConfig cc = bit_range_cfg(100);
  if (percentage) {
    cc.injection_type = core::InjectionType::Percentage;
    cc.injection_attempts = 0.1;
  }
  core::Corrupter corrupter(cc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corrupter.resolve_attempts(f));
  }
}
BENCHMARK(BM_ResolveAttempts)->Arg(0)->Arg(1);

// Ablation: location-targeted injection vs whole-file random locations.
void BM_LocationTargeting(benchmark::State& state) {
  const bool targeted = state.range(0) != 0;
  mh5::File f = make_file(4096, 32);
  core::CorrupterConfig cc = bit_range_cfg(1000);
  if (targeted) {
    cc.use_random_locations = false;
    cc.locations_to_corrupt = {"model/layer0"};
  }
  for (auto _ : state) {
    core::Corrupter corrupter(cc);
    benchmark::DoNotOptimize(corrupter.corrupt(f));
  }
}
BENCHMARK(BM_LocationTargeting)->Arg(0)->Arg(1);

void BM_CorruptF16Dataset(benchmark::State& state) {
  mh5::File f = make_file(4096, 8, mh5::DType::F16);
  core::CorrupterConfig cc = bit_range_cfg(1000);
  cc.float_precision = 16;
  cc.last_bit = 13;
  for (auto _ : state) {
    core::Corrupter corrupter(cc);
    benchmark::DoNotOptimize(corrupter.corrupt(f));
  }
}
BENCHMARK(BM_CorruptF16Dataset);

}  // namespace

int main(int argc, char** argv) {
  return ckptfi::bench_micro::run_main(argc, argv, "bench_micro_injector");
}
