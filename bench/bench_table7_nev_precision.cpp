// Table VII: incidence of NaN and extreme values at 16- and 32-bit
// checkpoint precision (Chainer, all three models; the 64-bit column is
// Table IV / bench_table4).
//
// Each precision x model x rate cell fans its trials out on
// core::TrialScheduler (--jobs N); per-trial seeds come from
// trial_seed(campaign, index), making --jobs 8 bitwise-identical to
// --jobs 1 (verify with --trials-out and diff).
//
// --compute-precision=fp64|fp16 selects the GEMM compute path the resumed
// trainings run under (default fp64). fp16 replays the table with the GEMM
// family computing through genuine binary16 storage panels (fp32
// accumulate, docs/KERNELS.md) — the native-compute counterpart to the
// checkpoint-precision axis the table already sweeps.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  std::string compute_precision = "fp64";
  const BenchOptions opt = BenchOptions::parse(
      argc, argv, BenchOptions{},
      {{"compute-precision", &compute_precision}});
  if (compute_precision == "fp16") {
    set_gemm_precision(GemmPrecision::kFp16);
  } else if (compute_precision != "fp64") {
    std::fprintf(stderr,
                 "bench_table7: --compute-precision must be fp64 or fp16 "
                 "(got '%s')\n",
                 compute_precision.c_str());
    return 2;
  }
  bench::print_banner(
      "Table VII: N-EV incidence at 16/32-bit precision (chainer, " +
          std::string(gemm_precision_name()) + " compute)",
      opt);
  // The compute precision rides in the fingerprint's mode slot so fp64 and
  // fp16 runs never cross-resume from each other's trial rows.
  bench::TrialRows trials_out(
      opt.trials_out, "",
      bench::bench_fingerprint(opt, "table7", gemm_precision_name()));

  const std::vector<std::uint64_t> rates = {1, 10, 100, 1000};
  core::TextTable table(
      {"precision", "model", "bit-flips", "trainings", "N-EV", "%"});

  for (const int precision : {16, 32}) {
    for (const auto& model : models::model_names()) {
      core::ExperimentRunner runner(
          bench::make_config(opt, "chainer", model, precision));
      runner.restart_checkpoint();  // warm the immutable cache pre-fan-out
      for (const std::uint64_t rate : rates) {
        const std::string cell = "chainer/" + model + "/p" +
                                 std::to_string(precision) + "/" +
                                 std::to_string(rate);
        std::vector<std::uint8_t> collapsed(opt.trainings, 0);
        std::vector<Json> rows(opt.trainings);
        bench::make_scheduler(opt, cell).run(
            opt.trainings, [&](const core::TrialContext& trial) {
              mh5::File ckpt = runner.restart_checkpoint();
              core::CorrupterConfig cc;
              cc.float_precision = precision;
              cc.injection_attempts = static_cast<double>(rate);
              cc.corruption_mode = core::CorruptionMode::BitRange;
              cc.first_bit = 0;
              cc.last_bit = precision - 1;  // full range at this width
              cc.seed = trial.seed;
              core::Corrupter corrupter(cc);
              const core::InjectionReport rep = corrupter.corrupt(ckpt);
              const nn::TrainResult res =
                  runner.resume_training(ckpt, opt.resume_epochs);
              collapsed[trial.index] = res.collapsed ? 1 : 0;
              if (trials_out.enabled()) {
                Json row = Json::object();
                row["cell"] = cell;
                row["trial"] = trial.index;
                row["seed"] = std::to_string(trial.seed);
                row["collapsed"] = res.collapsed;
                row["final_accuracy"] = res.final_accuracy;
                row["log"] = rep.log.to_json();
                rows[trial.index] = std::move(row);
              }
            });
        trials_out.flush_cell(rows);
        std::size_t nev = 0;
        for (const auto c : collapsed) nev += c;
        table.add_row({std::to_string(precision), model, std::to_string(rate),
                       std::to_string(opt.trainings), std::to_string(nev),
                       format_fixed(100.0 * static_cast<double>(nev) /
                                        static_cast<double>(opt.trainings),
                                    1)});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: N-EV rate rises with flip count at every precision; "
      "incidence is not strictly tied to precision, with a mild reduction "
      "at 1000 flips for 16-bit vs 32-bit on ResNet/AlexNet.\n");
  trials_out.commit();
  return 0;
}
