// Table IV: incidence of NaN and extreme values (N-EV) at 64-bit precision.
//
// For every framework x model x bit-flip rate {1,10,100,1000}, resume
// `trainings` corrupted trainings (full bit range, NaN allowed) and count
// how many collapse with N-EV. The paper's shape: incidence rises from
// <0.5% at 1 flip to ~100% at 1000 flips; VGG16 is the least affected.
//
// The trial bodies live in core::Campaign ("table4") — the same code a
// ckptfi-worker runs for a leased shard, so a fleet-produced --trials-out
// is byte-identical to this bench's. --fleet-manifest=PATH exports the
// campaign for ckptfi-fleetd instead of running it here (docs/FLEET.md).
//
// Trials within a cell are independent, so the cell fans out on
// core::TrialScheduler (--jobs N); per-trial seeds come from
// trial_seed(campaign, index), making --jobs 8 bitwise-identical to
// --jobs 1 (verify with --trials-out and diff). --resume-from heals an
// interrupted campaign: finished (cell, trial) rows are re-emitted
// verbatim, only missing ones run.
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  const core::CampaignOptions copts = bench::campaign_options(opt, "table4");
  auto campaign = core::Campaign::make(copts);
  if (bench::export_fleet_manifest(opt, *campaign)) return 0;

  bench::print_banner("Table IV: N-EV incidence at 64-bit precision", opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from,
                              copts.fingerprint_hex());

  core::TextTable table(
      {"framework", "model", "bit-flips", "trainings", "N-EV", "%"});

  std::string last_model;
  for (const core::CampaignCell& cell : campaign->cells()) {
    const std::vector<std::string> parts = split_path(cell.name);
    const std::string& framework = parts[0];
    const std::string& model = parts[1];
    const std::string& rate = parts[2];

    campaign->prepare_cell(cell.name);
    std::vector<std::uint8_t> collapsed(cell.trials, 0);
    std::vector<Json> rows(cell.trials);
    bench::make_scheduler(opt, cell.name)
        .run(cell.trials, [&](const core::TrialContext& trial) {
          if (const Json* p = trials_out.prior(cell.name, trial.index)) {
            collapsed[trial.index] = p->at("collapsed").as_bool() ? 1 : 0;
            return;
          }
          Json row = campaign->run_trial(cell.name, trial);
          collapsed[trial.index] = row.at("collapsed").as_bool() ? 1 : 0;
          if (trials_out.enabled()) rows[trial.index] = std::move(row);
        });
    trials_out.flush_cell(cell.name, rows);

    std::size_t nev = 0;
    for (const auto c : collapsed) nev += c;
    table.add_row({framework, model, rate, std::to_string(cell.trials),
                   std::to_string(nev),
                   format_fixed(100.0 * static_cast<double>(nev) /
                                    static_cast<double>(cell.trials),
                                1)});
    const std::string fm = framework + "/" + model;
    if (fm != last_model) {
      last_model = fm;
      std::printf(".");
      std::fflush(stdout);
    }
  }
  trials_out.commit();
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: ~0-0.4%% at 1 flip, rising with rate to >90%% at 1000 "
      "flips; VGG16 least affected.\n");
  return 0;
}
