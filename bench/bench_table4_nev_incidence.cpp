// Table IV: incidence of NaN and extreme values (N-EV) at 64-bit precision.
//
// For every framework x model x bit-flip rate {1,10,100,1000}, resume
// `trainings` corrupted trainings (full bit range, NaN allowed) and count
// how many collapse with N-EV. The paper's shape: incidence rises from
// <0.5% at 1 flip to ~100% at 1000 flips; VGG16 is the least affected.
//
// Trials within a cell are independent, so the cell fans out on
// core::TrialScheduler (--jobs N); per-trial seeds come from
// trial_seed(campaign, index), making --jobs 8 bitwise-identical to
// --jobs 1 (verify with --trials-out and diff).
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "frameworks/framework.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  bench::print_banner("Table IV: N-EV incidence at 64-bit precision", opt);
  bench::TrialRows trials_out(opt.trials_out);

  const std::vector<std::uint64_t> rates = {1, 10, 100, 1000};
  core::TextTable table(
      {"framework", "model", "bit-flips", "trainings", "N-EV", "%"});

  for (const auto& framework : fw::framework_names()) {
    for (const auto& model : models::model_names()) {
      core::ExperimentRunner runner(bench::make_config(opt, framework, model));
      // Train the baseline and snapshot the restart checkpoint before the
      // fan-out, so trials start from a warm immutable cache; the clean
      // probed run is likewise memoized up front so trials only read it.
      runner.restart_checkpoint();
      const core::ExperimentRunner::CleanProbedRun& clean =
          runner.clean_probed_run(opt.resume_epochs);
      for (const std::uint64_t rate : rates) {
        const std::string cell =
            framework + "/" + model + "/" + std::to_string(rate);
        std::vector<std::uint8_t> collapsed(opt.trainings, 0);
        std::vector<Json> rows(opt.trainings);
        bench::make_scheduler(opt, cell).run(
            opt.trainings, [&](const core::TrialContext& trial) {
              mh5::File ckpt = runner.restart_checkpoint();
              core::CorrupterConfig cc;
              cc.injection_attempts = static_cast<double>(rate);
              cc.corruption_mode = core::CorruptionMode::BitRange;
              cc.first_bit = 0;
              cc.last_bit = 63;  // full range, critical bit included
              cc.seed = trial.seed;
              core::Corrupter corrupter(cc);
              core::InjectionReport rep = corrupter.corrupt(ckpt);
              core::ExperimentRunner::ProbedResume probed =
                  runner.resume_training_probed(ckpt, opt.resume_epochs);
              const nn::TrainResult& res = probed.result;
              collapsed[trial.index] = res.collapsed ? 1 : 0;
              if (trials_out.enabled()) {
                const obs::DivergenceTrace div = runner.divergence_vs_clean(
                    probed.probes, opt.resume_epochs);
                Json row = Json::object();
                row["cell"] = cell;
                row["trial"] = trial.index;
                row["seed"] = std::to_string(trial.seed);
                row["collapsed"] = res.collapsed;
                row["final_accuracy"] = res.final_accuracy;
                row["clean_accuracy"] = clean.result.final_accuracy;
                row["log"] = rep.log.to_json();
                row["divergence"] = div.to_json();
                rows[trial.index] = std::move(row);
              }
            });
        trials_out.flush_cell(rows);
        std::size_t nev = 0;
        for (const auto c : collapsed) nev += c;
        table.add_row({framework, model, std::to_string(rate),
                       std::to_string(opt.trainings), std::to_string(nev),
                       format_fixed(100.0 * static_cast<double>(nev) /
                                        static_cast<double>(opt.trainings),
                                    1)});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: ~0-0.4%% at 1 flip, rising with rate to >90%% at 1000 "
      "flips; VGG16 least affected.\n");
  return 0;
}
