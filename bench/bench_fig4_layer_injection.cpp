// Figure 4: fault injection into specific layers of AlexNet (Chainer).
//
// 1000 bit-flips confined to the first (conv1), middle (conv4) and last
// (fc8) layer; accuracy trajectories vs the error-free line. The paper
// finds first-layer injection dips then recovers; middle/last barely move.
// The generated injection logs are saved for bench_fig5 to replay.
//
// The trial bodies live in core::Campaign ("fig4") — the same code a
// ckptfi-worker runs for a leased shard, so a fleet-produced --trials-out
// is byte-identical to this bench's. --fleet-manifest=PATH exports the
// campaign for ckptfi-fleetd instead of running it here (docs/FLEET.md).
//
// Trials fan out per layer on core::TrialScheduler (--jobs N); each trial
// writes its epoch trajectory into its own index slot and the mean is
// reduced in index order afterwards, so output is --jobs invariant.
//
// Every trial resumes with numeric-health probes attached and emits a
// divergence trace against the clean probed baseline (obs/probes.hpp), so
// the --trials-out rows carry where each injection's corruption went — the
// input ckptfi_report aggregates.
//
// Because all of a layer's trials corrupt the same layer, they share an
// activation prefix: with --prefix-reuse=on (the default) each trial enters
// the network at the injected layer's segment with cached upstream
// activations (core::PrefixCache) instead of recomputing them —
// bitwise-identical output, less compute. Two modes:
//
//   --mode=train    (default) the paper's resumed-training trajectories;
//                   prefix entry covers the first resumed batch.
//   --mode=predict  inference-only trials (load corrupted checkpoint,
//                   evaluate the test set): every test batch reuses its
//                   cached boundary activation, so deep-layer campaigns
//                   (fc8) skip nearly all upstream compute — the headline
//                   prefix-reuse speedup (see EXPERIMENTS.md).
//
//   --layers=a,b,c  override the injected layer list (canonical names).
#include "bench/common.hpp"
#include "core/injection_log.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The fig5 replay artifact: trial 0's log (meta + divergence already
/// attached by the campaign) saved beside the bench, whether the row came
/// from a fresh trial, a resumed row, or (via the fleet) another host.
void save_fig5_log(const Json& row, const std::string& layer) {
  core::InjectionLog::from_json(row.at("log"))
      .save("fig4_log_" + layer + ".json");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "train";
  std::string layers_csv;
  BenchOptions opt =
      BenchOptions::parse(argc, argv, bench::trained_defaults(),
                          {{"mode", &mode}, {"layers", &layers_csv}});
  if (mode != "train" && mode != "predict") {
    std::fprintf(stderr, "bench_fig4: --mode must be train or predict\n");
    return 2;
  }

  // Display labels for the paper's default trio; a --layers override uses
  // the layer names as labels. The campaign itself only knows layer names.
  std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};
  std::vector<std::string> layer_override;
  if (!layers_csv.empty()) {
    layers.clear();
    for (const std::string& l : split_csv(layers_csv)) {
      layers.push_back({l, l});
      layer_override.push_back(l);
    }
  }

  const core::CampaignOptions copts =
      bench::campaign_options(opt, "fig4", mode, layer_override);
  auto campaign = core::Campaign::make(copts);
  if (bench::export_fleet_manifest(opt, *campaign)) return 0;

  bench::print_banner("Figure 4: per-layer injection, chainer/alexnet (" +
                          mode + " mode)",
                      opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from,
                              copts.fingerprint_hex());

  const std::size_t epochs = opt.total_epochs - opt.restart_epoch;

  if (mode == "predict") {
    // Inference-only campaign: corrupt the restart checkpoint, load it, and
    // evaluate the test set. All of a layer's trials enter at its segment
    // with the same cached boundary activations.
    core::TextTable table({"series", "mean acc", "N-EV", "trainings"});
    for (const auto& [label, layer] : layers) {
      const std::string cell = "fig4predict/" + layer;
      campaign->prepare_cell(cell);
      std::vector<double> accs(opt.trainings, 0.0);
      std::vector<std::uint8_t> nevs(opt.trainings, 0);
      std::vector<Json> rows(opt.trainings);
      bench::make_scheduler(opt, cell).run(
          opt.trainings, [&](const core::TrialContext& trial) {
            if (const Json* p = trials_out.prior(cell, trial.index)) {
              accs[trial.index] = p->at("accuracy").as_double();
              nevs[trial.index] = p->at("nev").as_bool() ? 1 : 0;
              return;
            }
            Json row = campaign->run_trial(cell, trial);
            accs[trial.index] = row.at("accuracy").as_double();
            nevs[trial.index] = row.at("nev").as_bool() ? 1 : 0;
            if (trials_out.enabled()) rows[trial.index] = std::move(row);
          });
      trials_out.flush_cell(cell, rows);
      double acc_sum = 0.0;
      std::size_t nev = 0;
      for (std::size_t t = 0; t < opt.trainings; ++t) {
        acc_sum += accs[t];
        nev += nevs[t];
      }
      table.add_row({label,
                     format_fixed(100.0 * acc_sum /
                                      static_cast<double>(opt.trainings),
                                  1),
                     std::to_string(nev), std::to_string(opt.trainings)});
      std::printf(".");
      std::fflush(stdout);
    }
    trials_out.commit();
    std::printf("\n\n%s\n", table.str().c_str());
    std::printf(
        "inference-only injections: deep-layer cells reuse nearly the whole "
        "forward via cached prefixes (see prefix.* counters in --json-out).\n");
    return 0;
  }

  core::TextTable table([&] {
    std::vector<std::string> hdr = {"series"};
    for (std::size_t e = 0; e < epochs; ++e)
      hdr.push_back("e" + std::to_string(opt.restart_epoch + e));
    return hdr;
  }());

  // Clean probed baseline: error-free resumed trajectory plus the probe
  // timeline every corrupted trial's divergence trace is measured against.
  const Json clean = campaign->clean_summary();
  {
    std::vector<std::string> row = {"error-free"};
    for (const Json& a : clean.at("trajectory").items())
      row.push_back(format_fixed(100.0 * a.as_double(), 1));
    while (row.size() < epochs + 1) row.push_back("-");
    table.add_row(row);
  }

  for (const auto& [label, layer] : layers) {
    const std::string cell = "fig4/" + layer;
    campaign->prepare_cell(cell);
    std::vector<std::vector<double>> trial_acc(opt.trainings);
    std::vector<Json> rows(opt.trainings);
    bench::make_scheduler(opt, cell).run(
        opt.trainings, [&](const core::TrialContext& trial) {
          if (const Json* p = trials_out.prior(cell, trial.index)) {
            auto& acc = trial_acc[trial.index];
            for (const Json& a : p->at("accuracy").items())
              acc.push_back(a.as_double());
            if (trial.index == 0) save_fig5_log(*p, layer);
            return;
          }
          Json row = campaign->run_trial(cell, trial);
          auto& acc = trial_acc[trial.index];
          for (const Json& a : row.at("accuracy").items())
            acc.push_back(a.as_double());
          if (trial.index == 0) save_fig5_log(row, layer);
          if (trials_out.enabled()) rows[trial.index] = std::move(row);
        });
    trials_out.flush_cell(cell, rows);
    // Index-order reduction: identical for every --jobs value.
    std::vector<double> acc_sum(epochs, 0.0);
    std::vector<std::size_t> acc_n(epochs, 0);
    for (const auto& acc : trial_acc) {
      for (std::size_t e = 0; e < acc.size(); ++e) {
        acc_sum[e] += acc[e];
        acc_n[e] += 1;
      }
    }
    std::vector<std::string> row = {label};
    for (std::size_t e = 0; e < epochs; ++e) {
      row.push_back(acc_n[e] ? format_fixed(100.0 * acc_sum[e] /
                                                static_cast<double>(acc_n[e]),
                                            1)
                             : "-");
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  trials_out.commit();
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: only first-layer injection visibly degrades accuracy at "
      "restart, then recovers toward the error-free line; middle and last "
      "layers absorb the flips. logs saved to fig4_log_<layer>.json\n");
  return 0;
}
