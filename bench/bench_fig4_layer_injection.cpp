// Figure 4: fault injection into specific layers of AlexNet (Chainer).
//
// 1000 bit-flips confined to the first (conv1), middle (conv4) and last
// (fc8) layer; accuracy trajectories vs the error-free line. The paper
// finds first-layer injection dips then recovers; middle/last barely move.
// The generated injection logs are saved for bench_fig5 to replay.
//
// Trials fan out per layer on core::TrialScheduler (--jobs N); each trial
// writes its epoch trajectory into its own index slot and the mean is
// reduced in index order afterwards, so output is --jobs invariant.
//
// Every trial resumes with numeric-health probes attached and emits a
// divergence trace against the clean probed baseline (obs/probes.hpp), so
// the --trials-out rows carry where each injection's corruption went — the
// input ckptfi_report aggregates.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "core/injection_log.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner("Figure 4: per-layer injection, chainer/alexnet", opt);
  bench::TrialRows trials_out(opt.trials_out);

  core::ExperimentRunner runner(bench::make_config(opt, "chainer", "alexnet"));
  const std::size_t epochs =
      runner.config().total_epochs - runner.config().restart_epoch;

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  core::TextTable table([&] {
    std::vector<std::string> hdr = {"series"};
    for (std::size_t e = 0; e < epochs; ++e)
      hdr.push_back("e" + std::to_string(runner.config().restart_epoch + e));
    return hdr;
  }());

  // Clean probed baseline: error-free resumed trajectory plus the probe
  // timeline every corrupted trial's divergence trace is measured against.
  const core::ExperimentRunner::CleanProbedRun& clean =
      runner.clean_probed_run();
  {
    std::vector<std::string> row = {"error-free"};
    for (const auto& s : clean.result.epochs)
      row.push_back(format_fixed(100.0 * s.test_accuracy, 1));
    while (row.size() < epochs + 1) row.push_back("-");
    table.add_row(row);
  }

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  for (const auto& [label, layer] : layers) {
    const std::string cell = "fig4/" + layer;
    std::vector<std::vector<double>> trial_acc(opt.trainings);
    std::vector<Json> rows(opt.trainings);
    bench::make_scheduler(opt, cell).run(
        opt.trainings, [&](const core::TrialContext& trial) {
          mh5::File ckpt = runner.restart_checkpoint();
          core::CorrupterConfig cc;
          cc.injection_attempts = 1000;
          cc.corruption_mode = core::CorruptionMode::BitRange;
          cc.first_bit = 0;
          cc.last_bit = 61;
          cc.use_random_locations = false;
          cc.locations_to_corrupt = {"predictor/" + layer};
          cc.seed = trial.seed;
          core::Corrupter corrupter(cc);
          core::InjectionReport rep = corrupter.corrupt(ckpt, &ctx);
          core::ExperimentRunner::ProbedResume probed =
              runner.resume_training_probed(ckpt);
          const nn::TrainResult& res = probed.result;
          const obs::DivergenceTrace div =
              runner.divergence_vs_clean(probed.probes);
          if (trial.index == 0) {
            // Save the first trial's log for equivalent injection (fig 5),
            // with its divergence trace attached for forensics.
            rep.log.set_meta("framework", "chainer");
            rep.log.set_meta("model", "alexnet");
            rep.log.set_divergence(div.to_json());
            rep.log.save("fig4_log_" + layer + ".json");
          }
          auto& acc = trial_acc[trial.index];
          for (std::size_t e = 0; e < res.epochs.size() && e < epochs; ++e)
            acc.push_back(res.epochs[e].test_accuracy);
          if (trials_out.enabled()) {
            Json row = Json::object();
            row["cell"] = cell;
            row["trial"] = trial.index;
            row["seed"] = std::to_string(trial.seed);
            row["collapsed"] = res.collapsed;
            row["final_accuracy"] = res.final_accuracy;
            row["clean_accuracy"] = clean.result.final_accuracy;
            Json traj = Json::array();
            for (const double a : acc) traj.push_back(a);
            row["accuracy"] = std::move(traj);
            row["log"] = rep.log.to_json();
            row["divergence"] = div.to_json();
            rows[trial.index] = std::move(row);
          }
        });
    trials_out.flush_cell(rows);
    // Index-order reduction: identical for every --jobs value.
    std::vector<double> acc_sum(epochs, 0.0);
    std::vector<std::size_t> acc_n(epochs, 0);
    for (const auto& acc : trial_acc) {
      for (std::size_t e = 0; e < acc.size(); ++e) {
        acc_sum[e] += acc[e];
        acc_n[e] += 1;
      }
    }
    std::vector<std::string> row = {label};
    for (std::size_t e = 0; e < epochs; ++e) {
      row.push_back(acc_n[e] ? format_fixed(100.0 * acc_sum[e] /
                                                static_cast<double>(acc_n[e]),
                                            1)
                             : "-");
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: only first-layer injection visibly degrades accuracy at "
      "restart, then recovers toward the error-free line; middle and last "
      "layers absorb the flips. logs saved to fig4_log_<layer>.json\n");
  return 0;
}
