// Figure 4: fault injection into specific layers of AlexNet (Chainer).
//
// 1000 bit-flips confined to the first (conv1), middle (conv4) and last
// (fc8) layer; accuracy trajectories vs the error-free line. The paper
// finds first-layer injection dips then recovers; middle/last barely move.
// The generated injection logs are saved for bench_fig5 to replay.
//
// Trials fan out per layer on core::TrialScheduler (--jobs N); each trial
// writes its epoch trajectory into its own index slot and the mean is
// reduced in index order afterwards, so output is --jobs invariant.
//
// Every trial resumes with numeric-health probes attached and emits a
// divergence trace against the clean probed baseline (obs/probes.hpp), so
// the --trials-out rows carry where each injection's corruption went — the
// input ckptfi_report aggregates.
//
// Because all of a layer's trials corrupt the same layer, they share an
// activation prefix: with --prefix-reuse=on (the default) each trial enters
// the network at the injected layer's segment with cached upstream
// activations (core::PrefixCache) instead of recomputing them —
// bitwise-identical output, less compute. Two modes:
//
//   --mode=train    (default) the paper's resumed-training trajectories;
//                   prefix entry covers the first resumed batch.
//   --mode=predict  inference-only trials (load corrupted checkpoint,
//                   evaluate the test set): every test batch reuses its
//                   cached boundary activation, so deep-layer campaigns
//                   (fc8) skip nearly all upstream compute — the headline
//                   prefix-reuse speedup (see EXPERIMENTS.md).
//
//   --layers=a,b,c  override the injected layer list (canonical names).
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "core/injection_log.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "train";
  std::string layers_csv;
  BenchOptions opt =
      BenchOptions::parse(argc, argv, bench::trained_defaults(),
                          {{"mode", &mode}, {"layers", &layers_csv}});
  if (mode != "train" && mode != "predict") {
    std::fprintf(stderr, "bench_fig4: --mode must be train or predict\n");
    return 2;
  }
  bench::print_banner("Figure 4: per-layer injection, chainer/alexnet (" +
                          mode + " mode)",
                      opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from);

  core::ExperimentRunner runner(bench::make_config(opt, "chainer", "alexnet"));
  const std::size_t epochs =
      runner.config().total_epochs - runner.config().restart_epoch;

  std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};
  if (!layers_csv.empty()) {
    layers.clear();
    for (const std::string& l : split_csv(layers_csv)) layers.push_back({l, l});
  }

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  const auto corrupt_layer = [&](mh5::File& ckpt, const std::string& layer,
                                 std::uint64_t seed) {
    core::CorrupterConfig cc;
    cc.injection_attempts = 1000;
    cc.corruption_mode = core::CorruptionMode::BitRange;
    cc.first_bit = 0;
    cc.last_bit = 61;
    cc.use_random_locations = false;
    cc.locations_to_corrupt = {"predictor/" + layer};
    cc.seed = seed;
    core::Corrupter corrupter(cc);
    return corrupter.corrupt(ckpt, &ctx);
  };

  if (mode == "predict") {
    // Inference-only campaign: corrupt the restart checkpoint, load it, and
    // evaluate the test set. All of a layer's trials enter at its segment
    // with the same cached boundary activations.
    core::TextTable table({"series", "mean acc", "N-EV", "trainings"});
    for (const auto& [label, layer] : layers) {
      const std::string cell = "fig4predict/" + layer;
      std::vector<double> accs(opt.trainings, 0.0);
      std::vector<std::uint8_t> nevs(opt.trainings, 0);
      std::vector<Json> rows(opt.trainings);
      bench::make_scheduler(opt, cell).run(
          opt.trainings, [&](const core::TrialContext& trial) {
            if (const Json* p = trials_out.prior(cell, trial.index)) {
              accs[trial.index] = p->at("accuracy").as_double();
              nevs[trial.index] = p->at("nev").as_bool() ? 1 : 0;
              return;
            }
            mh5::File ckpt = runner.restart_checkpoint();
            core::InjectionReport rep =
                corrupt_layer(ckpt, layer, trial.seed);
            const std::size_t seg =
                opt.prefix_reuse ? runner.entry_segment(rep.log) : 0;
            const nn::EvalResult ev = runner.predict_from_segment(ckpt, seg);
            accs[trial.index] = ev.accuracy;
            nevs[trial.index] = ev.nev ? 1 : 0;
            if (trials_out.enabled()) {
              Json row = Json::object();
              row["cell"] = cell;
              row["trial"] = trial.index;
              row["seed"] = std::to_string(trial.seed);
              row["accuracy"] = ev.accuracy;
              row["nev"] = ev.nev;
              row["log"] = rep.log.to_json();
              rows[trial.index] = std::move(row);
            }
          });
      trials_out.flush_cell(cell, rows);
      double acc_sum = 0.0;
      std::size_t nev = 0;
      for (std::size_t t = 0; t < opt.trainings; ++t) {
        acc_sum += accs[t];
        nev += nevs[t];
      }
      table.add_row({label,
                     format_fixed(100.0 * acc_sum /
                                      static_cast<double>(opt.trainings),
                                  1),
                     std::to_string(nev), std::to_string(opt.trainings)});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n\n%s\n", table.str().c_str());
    std::printf(
        "inference-only injections: deep-layer cells reuse nearly the whole "
        "forward via cached prefixes (see prefix.* counters in --json-out).\n");
    return 0;
  }

  core::TextTable table([&] {
    std::vector<std::string> hdr = {"series"};
    for (std::size_t e = 0; e < epochs; ++e)
      hdr.push_back("e" + std::to_string(runner.config().restart_epoch + e));
    return hdr;
  }());

  // Clean probed baseline: error-free resumed trajectory plus the probe
  // timeline every corrupted trial's divergence trace is measured against.
  const core::ExperimentRunner::CleanProbedRun& clean =
      runner.clean_probed_run();
  {
    std::vector<std::string> row = {"error-free"};
    for (const auto& s : clean.result.epochs)
      row.push_back(format_fixed(100.0 * s.test_accuracy, 1));
    while (row.size() < epochs + 1) row.push_back("-");
    table.add_row(row);
  }

  for (const auto& [label, layer] : layers) {
    const std::string cell = "fig4/" + layer;
    std::vector<std::vector<double>> trial_acc(opt.trainings);
    std::vector<Json> rows(opt.trainings);
    bench::make_scheduler(opt, cell).run(
        opt.trainings, [&](const core::TrialContext& trial) {
          if (const Json* p = trials_out.prior(cell, trial.index)) {
            auto& acc = trial_acc[trial.index];
            for (const Json& a : p->at("accuracy").items())
              acc.push_back(a.as_double());
            if (trial.index == 0) {
              // Re-save the fig5 replay artifact from the prior row's log
              // (it already carries the meta + divergence attachments).
              core::InjectionLog::from_json(p->at("log"))
                  .save("fig4_log_" + layer + ".json");
            }
            return;
          }
          mh5::File ckpt = runner.restart_checkpoint();
          core::InjectionReport rep = corrupt_layer(ckpt, layer, trial.seed);
          const std::size_t seg =
              opt.prefix_reuse ? runner.entry_segment(rep.log) : 0;
          core::ExperimentRunner::ProbedResume probed =
              runner.resume_training_probed_from_segment(ckpt, seg);
          const nn::TrainResult& res = probed.result;
          const obs::DivergenceTrace div =
              runner.divergence_vs_clean(probed.probes);
          if (trial.index == 0) {
            // Save the first trial's log for equivalent injection (fig 5),
            // with its divergence trace attached for forensics.
            rep.log.set_meta("framework", "chainer");
            rep.log.set_meta("model", "alexnet");
            rep.log.set_divergence(div.to_json());
            rep.log.save("fig4_log_" + layer + ".json");
          }
          auto& acc = trial_acc[trial.index];
          for (std::size_t e = 0; e < res.epochs.size() && e < epochs; ++e)
            acc.push_back(res.epochs[e].test_accuracy);
          if (trials_out.enabled()) {
            Json row = Json::object();
            row["cell"] = cell;
            row["trial"] = trial.index;
            row["seed"] = std::to_string(trial.seed);
            row["collapsed"] = res.collapsed;
            row["final_accuracy"] = res.final_accuracy;
            row["clean_accuracy"] = clean.result.final_accuracy;
            Json traj = Json::array();
            for (const double a : acc) traj.push_back(a);
            row["accuracy"] = std::move(traj);
            row["log"] = rep.log.to_json();
            row["divergence"] = div.to_json();
            rows[trial.index] = std::move(row);
          }
        });
    trials_out.flush_cell(cell, rows);
    // Index-order reduction: identical for every --jobs value.
    std::vector<double> acc_sum(epochs, 0.0);
    std::vector<std::size_t> acc_n(epochs, 0);
    for (const auto& acc : trial_acc) {
      for (std::size_t e = 0; e < acc.size(); ++e) {
        acc_sum[e] += acc[e];
        acc_n[e] += 1;
      }
    }
    std::vector<std::string> row = {label};
    for (std::size_t e = 0; e < epochs; ++e) {
      row.push_back(acc_n[e] ? format_fixed(100.0 * acc_sum[e] /
                                                static_cast<double>(acc_n[e]),
                                            1)
                             : "-");
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: only first-layer injection visibly degrades accuracy at "
      "restart, then recovers toward the error-free line; middle and last "
      "layers absorb the flips. logs saved to fig4_log_<layer>.json\n");
  return 0;
}
