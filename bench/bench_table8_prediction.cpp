// Table VIII: prediction accuracy under different float precisions and
// bit-flip rates (Chainer, trained checkpoint, inference only).
//
// Each cell averages `trainings` prediction runs, every run corrupting a
// fresh copy of the fully-trained checkpoint and evaluating a different
// slice of the test set (the paper: 10 predictions x 1000 images each).
// N-EV counts predictions whose logits went NaN/Inf/extreme, shown in
// parentheses as in the paper.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, [] {
    BenchOptions d = bench::trained_defaults();
    d.trainings = 6;
    return d;
  }());
  bench::print_banner(
      "Table VIII: prediction under precision x bit-flip rate (chainer)",
      opt);

  const std::vector<std::uint64_t> rates = {0, 1, 10, 100, 1000};
  core::TextTable table({"precision", "model", "bit-flips", "avg-acc(%)",
                         "N-EV", "predictions"});

  for (const int precision : {16, 32, 64}) {
    for (const auto& model : models::model_names()) {
      core::ExperimentRunner runner(
          bench::make_config(opt, "chainer", model, precision));
      // The paper predicts from an epoch-100 (fully trained) checkpoint.
      const std::size_t trained_epoch = runner.config().total_epochs;
      for (const std::uint64_t rate : rates) {
        double acc_sum = 0.0;
        std::size_t acc_count = 0, nev = 0;
        for (std::size_t t = 0; t < opt.trainings; ++t) {
          mh5::File ckpt = runner.checkpoint_at(trained_epoch);
          if (rate > 0) {
            core::CorrupterConfig cc;
            cc.float_precision = precision;
            cc.injection_attempts = static_cast<double>(rate);
            cc.corruption_mode = core::CorruptionMode::BitRange;
            cc.first_bit = 0;
            cc.last_bit = precision - 2;  // spare exponent MSB: prediction
                                          // still runs, as in the paper
            cc.seed = opt.seed * 733 + t * 13 + rate +
                      static_cast<std::uint64_t>(precision);
            core::Corrupter corrupter(cc);
            corrupter.corrupt(ckpt);
          }
          const nn::EvalResult res =
              runner.predict_subset(ckpt, t % 2, 2);
          if (res.nev) {
            ++nev;
          } else {
            acc_sum += res.accuracy;
            ++acc_count;
          }
          if (rate == 0) break;  // deterministic baseline
        }
        const std::string acc_str =
            acc_count > 0
                ? format_fixed(100.0 * acc_sum /
                                   static_cast<double>(acc_count),
                               1)
                : "-";
        table.add_row({std::to_string(precision), model, std::to_string(rate),
                       acc_str, std::to_string(nev),
                       std::to_string(rate == 0 ? 1 : opt.trainings)});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: prediction (unlike training) degrades with flip rate, "
      "and degrades more at lower precision; ResNet is the most N-EV-prone "
      "model at high rates.\n");
  return 0;
}
