// Table VIII: prediction accuracy under different float precisions and
// bit-flip rates (Chainer, trained checkpoint, inference only).
//
// Each cell averages `trainings` prediction runs, every run corrupting a
// fresh copy of the fully-trained checkpoint and evaluating a different
// slice of the test set (the paper: 10 predictions x 1000 images each).
// N-EV counts predictions whose logits went NaN/Inf/extreme, shown in
// parentheses as in the paper.
//
// Prediction trials are independent, so each cell fans out on
// core::TrialScheduler (--jobs N); per-trial seeds come from
// trial_seed(campaign, index), making --jobs 8 bitwise-identical to
// --jobs 1 (verify with --trials-out and diff). The error-free baseline is
// deterministic and runs once, outside the scheduler.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, [] {
    BenchOptions d = bench::trained_defaults();
    d.trainings = 6;
    return d;
  }());
  bench::print_banner(
      "Table VIII: prediction under precision x bit-flip rate (chainer)",
      opt);
  bench::TrialRows trials_out(opt.trials_out, "",
                              bench::bench_fingerprint(opt, "table8"));

  const std::vector<std::uint64_t> rates = {0, 1, 10, 100, 1000};
  core::TextTable table({"precision", "model", "bit-flips", "avg-acc(%)",
                         "N-EV", "predictions"});

  for (const int precision : {16, 32, 64}) {
    for (const auto& model : models::model_names()) {
      core::ExperimentRunner runner(
          bench::make_config(opt, "chainer", model, precision));
      // The paper predicts from an epoch-100 (fully trained) checkpoint.
      const std::size_t trained_epoch = runner.config().total_epochs;
      runner.checkpoint_at(trained_epoch);  // warm the cache pre-fan-out
      for (const std::uint64_t rate : rates) {
        const bool baseline = rate == 0;
        const std::size_t trials = baseline ? 1 : opt.trainings;
        const std::string cell = "chainer/" + model + "/p" +
                                 std::to_string(precision) + "/predict" +
                                 std::to_string(rate);
        std::vector<std::uint8_t> nev_flags(trials, 0);
        std::vector<double> accs(trials, 0.0);
        std::vector<Json> rows(trials);
        bench::make_scheduler(opt, cell).run(
            trials, [&](const core::TrialContext& trial) {
              mh5::File ckpt = runner.checkpoint_at(trained_epoch);
              Json log;
              if (!baseline) {
                core::CorrupterConfig cc;
                cc.float_precision = precision;
                cc.injection_attempts = static_cast<double>(rate);
                cc.corruption_mode = core::CorruptionMode::BitRange;
                cc.first_bit = 0;
                cc.last_bit = precision - 2;  // spare exponent MSB:
                                              // prediction still runs, as in
                                              // the paper
                cc.seed = trial.seed;
                core::Corrupter corrupter(cc);
                const core::InjectionReport rep = corrupter.corrupt(ckpt);
                log = rep.log.to_json();
              }
              const nn::EvalResult res =
                  runner.predict_subset(ckpt, trial.index % 2, 2);
              nev_flags[trial.index] = res.nev ? 1 : 0;
              if (!res.nev) accs[trial.index] = res.accuracy;
              if (trials_out.enabled()) {
                Json r = Json::object();
                r["cell"] = cell;
                r["trial"] = trial.index;
                r["seed"] = std::to_string(trial.seed);
                r["nev"] = res.nev;
                r["accuracy"] = res.accuracy;
                r["log"] = log;
                rows[trial.index] = std::move(r);
              }
            });
        trials_out.flush_cell(rows);
        double acc_sum = 0.0;
        std::size_t acc_count = 0, nev = 0;
        for (std::size_t t = 0; t < trials; ++t) {
          if (nev_flags[t]) {
            ++nev;
          } else {
            acc_sum += accs[t];
            ++acc_count;
          }
        }
        const std::string acc_str =
            acc_count > 0
                ? format_fixed(100.0 * acc_sum /
                                   static_cast<double>(acc_count),
                               1)
                : "-";
        table.add_row({std::to_string(precision), model, std::to_string(rate),
                       acc_str, std::to_string(nev),
                       std::to_string(trials)});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: prediction (unlike training) degrades with flip rate, "
      "and degrades more at lower precision; ResNet is the most N-EV-prone "
      "model at high rates.\n");
  trials_out.commit();
  return 0;
}
