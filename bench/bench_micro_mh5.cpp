// Microbenchmarks of the mh5 container and float encode/decode paths.
#include <benchmark/benchmark.h>

#include "hdf5/file.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

using namespace ckptfi;

namespace {

mh5::File make_tree(std::size_t groups, std::size_t datasets_per_group,
                    std::uint64_t elems) {
  mh5::File f;
  Rng rng(3);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t d = 0; d < datasets_per_group; ++d) {
      auto& ds = f.create_dataset("g" + std::to_string(g) + "/layer" +
                                      std::to_string(d) + "/W",
                                  mh5::DType::F32, {elems});
      for (std::uint64_t i = 0; i < elems; ++i)
        ds.set_double(i, rng.normal());
    }
  }
  return f;
}

void BM_Serialize(benchmark::State& state) {
  const mh5::File f =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = f.serialize();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Serialize)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Deserialize(benchmark::State& state) {
  const auto bytes =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0))).serialize();
  for (auto _ : state) {
    mh5::File f = mh5::File::deserialize(bytes);
    benchmark::DoNotOptimize(f.root().children().size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_Deserialize)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Visit(benchmark::State& state) {
  const mh5::File f = make_tree(32, 8, 16);
  for (auto _ : state) {
    std::size_t count = 0;
    f.visit([&](const std::string&, const mh5::Node&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Visit);

void BM_DatasetPaths(benchmark::State& state) {
  const mh5::File f = make_tree(32, 8, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dataset_paths().size());
  }
}
BENCHMARK(BM_DatasetPaths);

void BM_ElementBitsAccess(benchmark::State& state) {
  mh5::File f = make_tree(1, 1, 65536);
  auto& ds = f.dataset("g0/layer0/W");
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t repr = ds.element_bits(i % ds.num_elements());
    ds.set_element_bits(i % ds.num_elements(), repr ^ 1u);
    ++i;
  }
}
BENCHMARK(BM_ElementBitsAccess);

void BM_F16Conversion(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> values(4096);
  for (auto& v : values) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    float sum = 0;
    for (float v : values) sum += f16::from_float(v).to_float();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_F16Conversion);

void BM_EncodeDecode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.normal();
  for (auto _ : state) {
    double sum = 0;
    for (double v : values) sum += decode_float(encode_float(v, bits), bits);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_EncodeDecode)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
