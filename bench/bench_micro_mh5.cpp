// Microbenchmarks of the mh5 container and float encode/decode paths.
//
// The serialize/load benchmarks come in pairs contrasting the two container
// generations (see docs/MH5_FORMAT.md):
//   - monolithic v1 (payloads inline in the tree) vs streaming v2 (TOC +
//     sequential payload region written through a Sink),
//   - eager load (every payload decoded up front) vs lazy load (headers +
//     TOC only; payloads fault in on first access).
// Each mode also reports the mh5 obs counters it moved (mh5.bytes_serialized,
// mh5.serialize_time, mh5.bytes_faulted_in, ...) as benchmark counters, from
// one untimed probe run so the instrumentation never sits in the hot loop.
//
// Pass --json-out=PATH (stripped before Google Benchmark sees the args) to
// enable the metrics registry for the whole run and dump its snapshot as
// JSON at exit — the EXPERIMENTS.md before/after numbers come from that.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/micro_common.hpp"
#include "hdf5/file.hpp"
#include "obs/obs.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

using namespace ckptfi;

namespace {

mh5::File make_tree(std::size_t groups, std::size_t datasets_per_group,
                    std::uint64_t elems) {
  mh5::File f;
  Rng rng(3);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t d = 0; d < datasets_per_group; ++d) {
      auto& ds = f.create_dataset("g" + std::to_string(g) + "/layer" +
                                      std::to_string(d) + "/W",
                                  mh5::DType::F32, {elems});
      for (std::uint64_t i = 0; i < elems; ++i)
        ds.set_double(i, rng.normal());
    }
  }
  return f;
}

/// Run `fn` once with metrics forced on and publish the deltas of the named
/// mh5 counters (plus the mh5.serialize_time histogram, in seconds) on the
/// benchmark. Restores the previous metrics switch, so a --json-out run's
/// registry keeps accumulating and a plain run stays uninstrumented.
template <typename Fn>
void probe_obs_counters(benchmark::State& state,
                        const std::vector<std::string>& names, Fn&& fn) {
  auto& reg = obs::Registry::global();
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  std::vector<std::uint64_t> before;
  before.reserve(names.size());
  for (const auto& n : names) before.push_back(reg.counter(n).value());
  const double time_before = reg.histogram("mh5.serialize_time").sum();
  fn();
  for (std::size_t i = 0; i < names.size(); ++i) {
    state.counters[names[i]] = static_cast<double>(
        reg.counter(names[i]).value() - before[i]);
  }
  state.counters["mh5.serialize_time"] =
      reg.histogram("mh5.serialize_time").sum() - time_before;
  obs::set_metrics_enabled(was_enabled);
}

/// v1: monolithic buffer, each dataset's payload inline in the tree walk.
void BM_SerializeV1(benchmark::State& state) {
  const mh5::File f =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = f.serialize_v1();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  probe_obs_counters(state, {"mh5.bytes_serialized"},
                     [&] { benchmark::DoNotOptimize(f.serialize_v1()); });
}
BENCHMARK(BM_SerializeV1)->Arg(256)->Arg(4096)->Arg(65536);

/// v2: streaming writer — tree section, sequential payloads, TOC — through a
/// BufferSink. Same bytes end-to-end, different write discipline.
void BM_Serialize(benchmark::State& state) {
  const mh5::File f =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = f.serialize();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  probe_obs_counters(state, {"mh5.bytes_serialized"},
                     [&] { benchmark::DoNotOptimize(f.serialize()); });
}
BENCHMARK(BM_Serialize)->Arg(256)->Arg(4096)->Arg(65536);

/// To-disk "before": materialize the full v2 byte vector, then write it out.
/// This is the intermediate copy File::serialize_into() exists to remove.
void BM_SaveMaterialized(benchmark::State& state) {
  const mh5::File f =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0)));
  const std::string path = "bench_micro_mh5_save.mh5";
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = f.serialize();
    bytes = buf.size();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  probe_obs_counters(state, {"mh5.bytes_serialized"}, [&] {
    const auto buf = f.serialize();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  });
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveMaterialized)->Arg(256)->Arg(4096)->Arg(65536);

/// To-disk "after": save() streams through serialize_into(FileSink) — no
/// intermediate vector, atomic temp + rename included.
void BM_SaveStreamed(benchmark::State& state) {
  const mh5::File f =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0)));
  const std::string path = "bench_micro_mh5_save.mh5";
  for (auto _ : state) {
    f.save(path);
  }
  probe_obs_counters(state, {"mh5.bytes_serialized", "mh5.bytes_written"},
                     [&] { f.save(path); });
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveStreamed)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Deserialize(benchmark::State& state) {
  const auto bytes =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0))).serialize();
  for (auto _ : state) {
    mh5::File f = mh5::File::deserialize(bytes);
    benchmark::DoNotOptimize(f.root().children().size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_Deserialize)->Arg(256)->Arg(4096)->Arg(65536);

/// Eager load: every payload in the container is decoded and CRC-checked.
void BM_LoadEager(benchmark::State& state) {
  const auto bytes =
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0))).serialize();
  const auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(bytes);
  for (auto _ : state) {
    mh5::File f = mh5::File::deserialize(*shared);
    benchmark::DoNotOptimize(f.dataset("g0/layer0/W").get_double(0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shared->size()));
  probe_obs_counters(state, {"mh5.bytes_faulted_in", "mh5.lazy_faults"}, [&] {
    mh5::File f = mh5::File::deserialize(*shared);
    benchmark::DoNotOptimize(f.dataset("g0/layer0/W").get_double(0));
  });
}
BENCHMARK(BM_LoadEager)->Arg(256)->Arg(4096)->Arg(65536);

/// Lazy load touching ONE of the 32 datasets: the parse reads headers + TOC
/// only, and exactly one payload faults in. The gap to BM_LoadEager is the
/// cost the corrupter no longer pays per injection cycle.
void BM_LoadLazyTouchOne(benchmark::State& state) {
  const auto shared = std::make_shared<const std::vector<std::uint8_t>>(
      make_tree(8, 4, static_cast<std::uint64_t>(state.range(0))).serialize());
  for (auto _ : state) {
    mh5::File f = mh5::File::deserialize_lazy(shared);
    benchmark::DoNotOptimize(f.dataset("g0/layer0/W").get_double(0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shared->size()));
  probe_obs_counters(state, {"mh5.bytes_faulted_in", "mh5.lazy_faults"}, [&] {
    mh5::File f = mh5::File::deserialize_lazy(shared);
    benchmark::DoNotOptimize(f.dataset("g0/layer0/W").get_double(0));
  });
}
BENCHMARK(BM_LoadLazyTouchOne)->Arg(256)->Arg(4096)->Arg(65536);

/// Patched rewrite after dirtying one dataset: 31 of 32 payloads stream
/// verbatim from the source file, only the dirty one re-encodes.
void BM_SavePatchedOneDirty(benchmark::State& state) {
  const std::string in_path = "bench_micro_mh5_in.mh5";
  const std::string out_path = "bench_micro_mh5_out.mh5";
  make_tree(8, 4, static_cast<std::uint64_t>(state.range(0))).save(in_path);
  for (auto _ : state) {
    mh5::File f = mh5::File::load_lazy(in_path);
    f.dataset("g0/layer0/W").set_element_bits(0, 0x3f800000u);
    f.save_patched(out_path);
  }
  probe_obs_counters(
      state, {"mh5.bytes_serialized", "mh5.bytes_copied_verbatim"}, [&] {
        mh5::File f = mh5::File::load_lazy(in_path);
        f.dataset("g0/layer0/W").set_element_bits(0, 0x3f800000u);
        f.save_patched(out_path);
      });
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}
BENCHMARK(BM_SavePatchedOneDirty)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Visit(benchmark::State& state) {
  const mh5::File f = make_tree(32, 8, 16);
  for (auto _ : state) {
    std::size_t count = 0;
    f.visit([&](const std::string&, const mh5::Node&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Visit);

void BM_DatasetPaths(benchmark::State& state) {
  const mh5::File f = make_tree(32, 8, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dataset_paths().size());
  }
}
BENCHMARK(BM_DatasetPaths);

void BM_ElementBitsAccess(benchmark::State& state) {
  mh5::File f = make_tree(1, 1, 65536);
  auto& ds = f.dataset("g0/layer0/W");
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t repr = ds.element_bits(i % ds.num_elements());
    ds.set_element_bits(i % ds.num_elements(), repr ^ 1u);
    ++i;
  }
}
BENCHMARK(BM_ElementBitsAccess);

void BM_F16Conversion(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> values(4096);
  for (auto& v : values) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    float sum = 0;
    for (float v : values) sum += f16::from_float(v).to_float();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_F16Conversion);

void BM_EncodeDecode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.normal();
  for (auto _ : state) {
    double sum = 0;
    for (double v : values) sum += decode_float(encode_float(v, bits), bits);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_EncodeDecode)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return ckptfi::bench_micro::run_main(argc, argv, "bench_micro_mh5");
}
