// Figure 3: accuracy-vs-epoch curves under different bit-flip rates.
//
// Three framework/model panels; in each, trainings resume from the restart
// checkpoint with {10,100,500,1000} bit-flips (exponent MSB excluded) and
// their accuracy trajectory is compared against the error-free training
// (the paper's green line). Each line averages `trainings` runs.
//
// Per-(panel, rate) campaigns fan out on core::TrialScheduler (--jobs N);
// per-trial trajectories land in index-addressed slots and the average is
// reduced in index order, so the printed curve is --jobs-independent.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  opt.resume_epochs = 0;  // resume to total_epochs for the full curve
  bench::print_banner("Figure 3: sensitivity to different bit-flip rates",
                      opt);
  bench::TrialRows trials_out(opt.trials_out, "",
                              bench::bench_fingerprint(opt, "fig3"));

  const std::vector<std::pair<std::string, std::string>> panels = {
      {"chainer", "resnet50"}, {"pytorch", "vgg16"}, {"tensorflow", "alexnet"}};
  const std::vector<std::uint64_t> rates = {10, 100, 500, 1000};

  for (const auto& [framework, model] : panels) {
    core::ExperimentRunner runner(bench::make_config(opt, framework, model));
    const std::size_t epochs =
        runner.config().total_epochs - runner.config().restart_epoch;

    std::printf("--- panel %s/%s (accuracy per epoch, restart at epoch %zu)\n",
                framework.c_str(), model.c_str(),
                runner.config().restart_epoch);
    core::TextTable table([&] {
      std::vector<std::string> hdr = {"series"};
      for (std::size_t e = 0; e < epochs; ++e)
        hdr.push_back("e" + std::to_string(runner.config().restart_epoch + e));
      return hdr;
    }());

    // Error-free resumed line (the paper's full-training green line);
    // computed before the fan-out, so trials share a warm checkpoint cache.
    {
      const nn::TrainResult& clean = runner.clean_resume();
      std::vector<std::string> row = {"error-free"};
      for (const auto& s : clean.epochs)
        row.push_back(format_fixed(100.0 * s.test_accuracy, 1));
      while (row.size() < epochs + 1) row.push_back("-");
      table.add_row(row);
    }

    for (const std::uint64_t rate : rates) {
      const std::string cell =
          framework + "/" + model + "/" + std::to_string(rate);
      std::vector<std::vector<double>> curves(opt.trainings);
      std::vector<Json> rows(opt.trainings);
      bench::make_scheduler(opt, cell).run(
          opt.trainings, [&](const core::TrialContext& trial) {
            mh5::File ckpt = runner.restart_checkpoint();
            core::CorrupterConfig cc;
            cc.injection_attempts = static_cast<double>(rate);
            cc.corruption_mode = core::CorruptionMode::BitRange;
            cc.first_bit = 0;
            cc.last_bit = 61;  // exponent MSB excluded (paper Section V-C)
            cc.seed = trial.seed;
            core::Corrupter corrupter(cc);
            core::InjectionReport rep = corrupter.corrupt(ckpt);
            const nn::TrainResult res = runner.resume_training(ckpt);
            auto& curve = curves[trial.index];
            curve.reserve(res.epochs.size());
            for (const auto& s : res.epochs)
              curve.push_back(s.test_accuracy);
            if (trials_out.enabled()) {
              Json row = Json::object();
              row["cell"] = cell;
              row["trial"] = trial.index;
              // Decimal string: Json's number type is int64, which would
              // render large uint64 seeds negative.
              row["seed"] = std::to_string(trial.seed);
              Json accs = Json::array();
              for (const double a : curve) accs.push_back(a);
              row["curve"] = std::move(accs);
              row["log"] = rep.log.to_json();
              rows[trial.index] = std::move(row);
            }
          });
      trials_out.flush_cell(rows);
      // Index-order reduction keeps the averaged curve independent of how
      // the trials were scheduled.
      std::vector<double> acc_sum(epochs, 0.0);
      std::vector<std::size_t> acc_n(epochs, 0);
      for (const auto& curve : curves) {
        for (std::size_t e = 0; e < curve.size() && e < epochs; ++e) {
          acc_sum[e] += curve[e];
          acc_n[e] += 1;
        }
      }
      std::vector<std::string> row = {std::to_string(rate) + " flips"};
      for (std::size_t e = 0; e < epochs; ++e) {
        row.push_back(acc_n[e] ? format_fixed(100.0 * acc_sum[e] /
                                                  static_cast<double>(acc_n[e]),
                                              1)
                               : "-");
      }
      table.add_row(row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n%s\n", table.str().c_str());
  }
  std::printf(
      "paper shape: with the exponent MSB excluded, no rate up to 1000 "
      "flips degrades the training trajectory; curves overlap the "
      "error-free line.\n");
  trials_out.commit();
  return 0;
}
