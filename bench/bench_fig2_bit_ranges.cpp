// Figure 2: which bit ranges collapse a network.
//
// The paper sweeps the corruptible bit range of the injector (1000 flips per
// training, 170 trainings per range) and finds training collapses only when
// the range includes the most significant exponent bit.
//
// Each range's trials fan out on core::TrialScheduler (--jobs N); results
// land in index-addressed slots so every aggregate — and the --trials-out
// JSONL — is bitwise independent of scheduling.
#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/bitops.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 2: bit ranges that collapse a network", opt);
  bench::TrialRows trials_out(opt.trials_out, "",
                              bench::bench_fingerprint(opt, "fig2"));

  struct Range {
    const char* label;
    int first, last;
    bool includes_msb;
  };
  const std::vector<Range> ranges = {
      {"[0,63] full value", 0, 63, true},
      {"[0,62] no sign", 0, 62, true},
      {"[0,61] no sign, no exp MSB", 0, 61, false},
      {"[52,62] exponent incl MSB", 52, 62, true},
      {"[52,61] exponent excl MSB", 52, 61, false},
      {"[0,51] mantissa only", 0, 51, false},
      {"[62,62] exponent MSB only", 62, 62, true},
  };

  core::TextTable table(
      {"bit range", "includes exp MSB", "trainings", "collapsed", "%"});
  core::ExperimentRunner runner(bench::make_config(opt, "chainer", "alexnet"));

  for (const auto& range : ranges) {
    const std::string cell = std::string("fig2/") + range.label;
    std::vector<std::uint8_t> collapsed_flags(opt.trainings, 0);
    std::vector<Json> rows(opt.trainings);
    bench::make_scheduler(opt, cell).run(
        opt.trainings, [&](const core::TrialContext& trial) {
          mh5::File ckpt = runner.restart_checkpoint();
          core::CorrupterConfig cc;
          cc.injection_attempts = 1000;
          cc.corruption_mode = core::CorruptionMode::BitRange;
          cc.first_bit = range.first;
          cc.last_bit = range.last;
          cc.seed = trial.seed;
          core::InjectionReport rep = core::Corrupter(cc).corrupt(ckpt);
          const nn::TrainResult res =
              runner.resume_training(ckpt, opt.resume_epochs);
          collapsed_flags[trial.index] = res.collapsed ? 1 : 0;
          if (trials_out.enabled()) {
            Json row = Json::object();
            row["cell"] = cell;
            row["trial"] = trial.index;
            row["seed"] = std::to_string(trial.seed);
            row["collapsed"] = res.collapsed;
            row["final_accuracy"] = res.final_accuracy;
            row["flips_applied"] = rep.log.size();
            rows[trial.index] = std::move(row);
          }
        });
    trials_out.flush_cell(rows);
    std::size_t collapsed = 0;
    for (const auto f : collapsed_flags) collapsed += f;
    table.add_row({range.label, range.includes_msb ? "yes" : "no",
                   std::to_string(opt.trainings), std::to_string(collapsed),
                   format_fixed(100.0 * static_cast<double>(collapsed) /
                                    static_cast<double>(opt.trainings),
                                1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: collapse happens only when the range includes the "
      "exponent MSB (bit 62); every range sparing it survives 1000 flips.\n");
  trials_out.commit();
  return 0;
}
