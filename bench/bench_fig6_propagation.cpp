// Figure 6: propagation of errors through the network (TensorFlow/AlexNet).
//
// Inject 1000 bit-flips into one layer at the restart epoch, train onward,
// then compare every weight against the error-free twin at the same epoch.
// The paper reports boxplots of the non-zero weight differences per
// injected layer: first-layer injection spreads the widest, the middle
// layer absorbs, the last layer sits in between.
#include <cmath>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner("Figure 6: soft error propagation, tensorflow/alexnet",
                      opt);

  core::ExperimentRunner runner(
      bench::make_config(opt, "tensorflow", "alexnet"));
  const std::size_t compare_epoch = runner.config().total_epochs;

  // Error-free weights at the comparison epoch (paper: epoch 30 = inject at
  // 20 + 10 epochs of training).
  const auto clean_weights =
      runner.weights_of(runner.checkpoint_at(compare_epoch));

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  core::TextTable table({"injected layer", "diff weights", "q1", "median",
                         "q3", "whisker-lo", "whisker-hi", "outliers"});

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  for (const auto& [label, layer] : layers) {
    mh5::File ckpt = runner.restart_checkpoint();
    core::CorrupterConfig cc;
    cc.injection_attempts = 1000;
    cc.corruption_mode = core::CorruptionMode::BitRange;
    cc.first_bit = 0;
    cc.last_bit = 61;
    cc.use_random_locations = false;
    cc.locations_to_corrupt = {"model_weights/" + layer};
    cc.seed = opt.seed * 211;
    core::Corrupter corrupter(cc);
    corrupter.corrupt(ckpt, &ctx);

    auto [res, trained] = runner.resume_training_with_model(ckpt);
    (void)res;

    // Differences between corrupted-then-trained weights and the clean twin;
    // only weights with differences are used (paper).
    std::vector<double> diffs;
    for (const auto& p : trained->params()) {
      const auto& clean = clean_weights.at(p.name);
      for (std::size_t i = 0; i < clean.size(); ++i) {
        const double d = (*p.value)[i] - clean[i];
        if (d != 0.0 && std::isfinite(d)) diffs.push_back(std::fabs(d));
      }
    }
    if (diffs.empty()) {
      table.add_row({label, "0", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const BoxplotStats box = boxplot_stats(diffs);
    table.add_row({label, std::to_string(diffs.size()),
                   format_fixed(box.q1, 6), format_fixed(box.median, 6),
                   format_fixed(box.q3, 6), format_fixed(box.whisker_lo, 6),
                   format_fixed(box.whisker_hi, 6),
                   std::to_string(box.n_outliers)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: first-layer injection shows the widest difference "
      "range; the (large) middle layer absorbs flips and shows the "
      "narrowest; the last layer sits between, limited by reduced "
      "backpropagation reach.\n");
  return 0;
}
