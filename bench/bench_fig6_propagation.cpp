// Figure 6: propagation of errors through the network (TensorFlow/AlexNet).
//
// Inject 1000 bit-flips into one layer at the restart epoch, train onward,
// then compare every weight against the error-free twin at the same epoch.
// The paper reports boxplots of the non-zero weight differences per
// injected layer: first-layer injection spreads the widest, the middle
// layer absorbs, the last layer sits in between.
//
// On top of the end-of-training weight diff, each trial resumes with
// numeric-health probes attached and its divergence trace (obs/probes.hpp)
// is consumed directly: the forensics table shows *when* the corruption
// first left the injected layer (first divergent step/point), how many
// layers it reached (propagation depth), and whether/where NaNs appeared —
// the step-resolved view the weight diff alone cannot give.
//
// The per-layer campaigns fan out on core::TrialScheduler (--jobs N): one
// trial per layer, results land in index slots and rows are emitted in
// layer order, so output is --jobs invariant. The memoized probed clean
// baseline (ExperimentRunner::clean_probed_run) is shared by every cell —
// one clean training serves the weight-diff twin, the divergence baseline
// and the prefix-cache builds. With --prefix-reuse=on each trial enters the
// network at its injected layer's segment (bitwise-identical results).
#include <cmath>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner("Figure 6: soft error propagation, tensorflow/alexnet",
                      opt);
  bench::TrialRows trials_out(opt.trials_out, opt.resume_from,
                              bench::bench_fingerprint(opt, "fig6"));

  core::ExperimentRunner runner(
      bench::make_config(opt, "tensorflow", "alexnet"));

  // Error-free twin: the clean probed resume provides both the comparison
  // weights (same restart => same zeroed optimizer velocity as the corrupted
  // trials, so every nonzero diff is injection-caused) and the baseline
  // probe timeline divergence traces are measured against. Memoized once in
  // the runner: every cell, prefix build and divergence call below reuses it.
  const core::ExperimentRunner::CleanProbedRun& clean =
      runner.clean_probed_run();

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  core::TextTable table({"injected layer", "diff weights", "q1", "median",
                         "q3", "whisker-lo", "whisker-hi", "outliers"});
  core::TextTable forensics({"injected layer", "first div step",
                             "first div point", "depth", "points", "nan onset",
                             "inf onset"});

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  // Per-layer result slots hold exactly what the tables print (numbers +
  // the divergence JSON), so a --resume-from row rehydrates a slot without
  // recomputing — fresh and resumed runs render identically.
  struct LayerResult {
    std::size_t n_diffs = 0;
    BoxplotStats box{};
    Json div;
  };
  const std::string cell = "fig6/propagation";
  std::vector<LayerResult> results(layers.size());
  std::vector<Json> rows(layers.size());
  bench::make_scheduler(opt, cell).run(
      layers.size(), [&](const core::TrialContext& trial) {
        LayerResult& slot = results[trial.index];
        if (const Json* p = trials_out.prior(cell, trial.index)) {
          slot.n_diffs = static_cast<std::size_t>(
              p->at("diff_weights").as_int());
          slot.box.q1 = p->at("q1").as_double();
          slot.box.median = p->at("median").as_double();
          slot.box.q3 = p->at("q3").as_double();
          slot.box.whisker_lo = p->at("whisker_lo").as_double();
          slot.box.whisker_hi = p->at("whisker_hi").as_double();
          slot.box.n_outliers =
              static_cast<std::size_t>(p->at("n_outliers").as_int());
          slot.div = p->at("divergence");
          return;
        }
        const std::string& layer = layers[trial.index].second;
        mh5::File ckpt = runner.restart_checkpoint();
        core::CorrupterConfig cc;
        cc.injection_attempts = 1000;
        cc.corruption_mode = core::CorruptionMode::BitRange;
        cc.first_bit = 0;
        cc.last_bit = 61;
        cc.use_random_locations = false;
        cc.locations_to_corrupt = {"model_weights/" + layer};
        cc.seed = trial.seed;
        core::Corrupter corrupter(cc);
        const core::InjectionReport rep = corrupter.corrupt(ckpt, &ctx);

        const std::size_t seg =
            opt.prefix_reuse ? runner.entry_segment(rep.log) : 0;
        core::ExperimentRunner::ProbedResume probed =
            runner.resume_training_probed_from_segment(ckpt, seg);

        // Differences between corrupted-then-trained weights and the clean
        // twin; only weights with differences are used (paper).
        std::vector<double> diffs;
        for (const auto& p : probed.model->params()) {
          const auto& clean_w = clean.final_weights.at(p.name);
          for (std::size_t i = 0; i < clean_w.size(); ++i) {
            const double d = (*p.value)[i] - clean_w[i];
            if (d != 0.0 && std::isfinite(d)) diffs.push_back(std::fabs(d));
          }
        }
        slot.n_diffs = diffs.size();
        if (!diffs.empty()) slot.box = boxplot_stats(diffs);
        slot.div = runner.divergence_vs_clean(probed.probes).to_json();
        if (trials_out.enabled()) {
          Json row = Json::object();
          row["cell"] = cell;
          row["trial"] = trial.index;
          row["seed"] = std::to_string(trial.seed);
          row["layer"] = layer;
          row["collapsed"] = probed.result.collapsed;
          row["final_accuracy"] = probed.result.final_accuracy;
          row["clean_accuracy"] = clean.result.final_accuracy;
          // Full boxplot stats ride along so a --resume-from run can
          // rehydrate the table without retraining.
          row["diff_weights"] = diffs.size();
          row["q1"] = slot.box.q1;
          row["median"] = slot.box.median;
          row["q3"] = slot.box.q3;
          row["whisker_lo"] = slot.box.whisker_lo;
          row["whisker_hi"] = slot.box.whisker_hi;
          row["n_outliers"] = slot.box.n_outliers;
          row["divergence"] = slot.div;
          rows[trial.index] = std::move(row);
        }
        std::printf(".");
        std::fflush(stdout);
      });
  trials_out.flush_cell(cell, rows);
  const auto onset_str = [](const Json& o) {
    if (o.is_null()) return std::string("-");
    return "s" + std::to_string(o.at("step").as_int()) + " " +
           o.at("layer").as_string() + "/" + o.at("phase").as_string();
  };
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerResult& r = results[i];
    if (r.n_diffs == 0) {
      table.add_row({layers[i].first, "0", "-", "-", "-", "-", "-", "-"});
    } else {
      table.add_row({layers[i].first, std::to_string(r.n_diffs),
                     format_fixed(r.box.q1, 6), format_fixed(r.box.median, 6),
                     format_fixed(r.box.q3, 6),
                     format_fixed(r.box.whisker_lo, 6),
                     format_fixed(r.box.whisker_hi, 6),
                     std::to_string(r.box.n_outliers)});
    }
    if (!r.div.at("diverged").as_bool()) {
      forensics.add_row(
          {layers[i].first, "-", "-", "0", "0", "-", "-"});
    } else {
      forensics.add_row(
          {layers[i].first, std::to_string(r.div.at("first_step").as_int()),
           r.div.at("first_layer").as_string() + "/" +
               r.div.at("first_phase").as_string(),
           std::to_string(r.div.at("depth").as_int()),
           std::to_string(r.div.at("points_diverged").as_int()),
           onset_str(r.div.at("nan_onset")),
           onset_str(r.div.at("inf_onset"))});
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf("propagation forensics (from the probe divergence traces):\n%s\n",
              forensics.str().c_str());
  std::printf(
      "paper shape: first-layer injection shows the widest difference "
      "range; the (large) middle layer absorbs flips and shows the "
      "narrowest; the last layer sits between, limited by reduced "
      "backpropagation reach. the forensics table gives the step-resolved "
      "view: depth = distinct layers whose probe stats left the clean "
      "trajectory.\n");
  trials_out.commit();
  return 0;
}
