// Figure 6: propagation of errors through the network (TensorFlow/AlexNet).
//
// Inject 1000 bit-flips into one layer at the restart epoch, train onward,
// then compare every weight against the error-free twin at the same epoch.
// The paper reports boxplots of the non-zero weight differences per
// injected layer: first-layer injection spreads the widest, the middle
// layer absorbs, the last layer sits in between.
//
// On top of the end-of-training weight diff, each trial resumes with
// numeric-health probes attached and its divergence trace (obs/probes.hpp)
// is consumed directly: the forensics table shows *when* the corruption
// first left the injected layer (first divergent step/point), how many
// layers it reached (propagation depth), and whether/where NaNs appeared —
// the step-resolved view the weight diff alone cannot give.
//
// The per-layer campaigns fan out on core::TrialScheduler (--jobs N): one
// trial per layer, results land in index slots and rows are emitted in
// layer order, so output is --jobs invariant.
#include <cmath>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner("Figure 6: soft error propagation, tensorflow/alexnet",
                      opt);
  bench::TrialRows trials_out(opt.trials_out);

  core::ExperimentRunner runner(
      bench::make_config(opt, "tensorflow", "alexnet"));

  // Error-free twin: the clean probed resume provides both the comparison
  // weights (same restart => same zeroed optimizer velocity as the corrupted
  // trials, so every nonzero diff is injection-caused) and the baseline
  // probe timeline divergence traces are measured against.
  const core::ExperimentRunner::CleanProbedRun& clean =
      runner.clean_probed_run();

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  core::TextTable table({"injected layer", "diff weights", "q1", "median",
                         "q3", "whisker-lo", "whisker-hi", "outliers"});
  core::TextTable forensics({"injected layer", "first div step",
                             "first div point", "depth", "points", "nan onset",
                             "inf onset"});

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  struct LayerResult {
    std::size_t n_diffs = 0;
    BoxplotStats box{};
    obs::DivergenceTrace div;
  };
  std::vector<LayerResult> results(layers.size());
  std::vector<Json> rows(layers.size());
  bench::make_scheduler(opt, "fig6/propagation")
      .run(layers.size(), [&](const core::TrialContext& trial) {
        const std::string& layer = layers[trial.index].second;
        mh5::File ckpt = runner.restart_checkpoint();
        core::CorrupterConfig cc;
        cc.injection_attempts = 1000;
        cc.corruption_mode = core::CorruptionMode::BitRange;
        cc.first_bit = 0;
        cc.last_bit = 61;
        cc.use_random_locations = false;
        cc.locations_to_corrupt = {"model_weights/" + layer};
        cc.seed = trial.seed;
        core::Corrupter corrupter(cc);
        corrupter.corrupt(ckpt, &ctx);

        core::ExperimentRunner::ProbedResume probed =
            runner.resume_training_probed(ckpt);

        // Differences between corrupted-then-trained weights and the clean
        // twin; only weights with differences are used (paper).
        std::vector<double> diffs;
        for (const auto& p : probed.model->params()) {
          const auto& clean_w = clean.final_weights.at(p.name);
          for (std::size_t i = 0; i < clean_w.size(); ++i) {
            const double d = (*p.value)[i] - clean_w[i];
            if (d != 0.0 && std::isfinite(d)) diffs.push_back(std::fabs(d));
          }
        }
        LayerResult& slot = results[trial.index];
        slot.n_diffs = diffs.size();
        if (!diffs.empty()) slot.box = boxplot_stats(diffs);
        slot.div = runner.divergence_vs_clean(probed.probes);
        if (trials_out.enabled()) {
          Json row = Json::object();
          row["cell"] = "fig6/propagation";
          row["trial"] = trial.index;
          row["seed"] = std::to_string(trial.seed);
          row["layer"] = layer;
          row["collapsed"] = probed.result.collapsed;
          row["final_accuracy"] = probed.result.final_accuracy;
          row["clean_accuracy"] = clean.result.final_accuracy;
          row["diff_weights"] = diffs.size();
          row["median"] = diffs.empty() ? 0.0 : slot.box.median;
          row["divergence"] = slot.div.to_json();
          rows[trial.index] = std::move(row);
        }
        std::printf(".");
        std::fflush(stdout);
      });
  trials_out.flush_cell(rows);
  const auto onset_str = [](const obs::OnsetCoord& o) {
    if (o.step < 0) return std::string("-");
    return "s" + std::to_string(o.step) + " " + o.layer + "/" +
           obs::probe_phase_name(o.phase);
  };
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerResult& r = results[i];
    if (r.n_diffs == 0) {
      table.add_row({layers[i].first, "0", "-", "-", "-", "-", "-", "-"});
    } else {
      table.add_row({layers[i].first, std::to_string(r.n_diffs),
                     format_fixed(r.box.q1, 6), format_fixed(r.box.median, 6),
                     format_fixed(r.box.q3, 6),
                     format_fixed(r.box.whisker_lo, 6),
                     format_fixed(r.box.whisker_hi, 6),
                     std::to_string(r.box.n_outliers)});
    }
    if (!r.div.diverged) {
      forensics.add_row(
          {layers[i].first, "-", "-", "0", "0", "-", "-"});
    } else {
      forensics.add_row(
          {layers[i].first, std::to_string(r.div.first_step),
           r.div.first_layer + "/" + obs::probe_phase_name(r.div.first_phase),
           std::to_string(r.div.depth), std::to_string(r.div.points_diverged),
           onset_str(r.div.nan_onset), onset_str(r.div.inf_onset)});
    }
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf("propagation forensics (from the probe divergence traces):\n%s\n",
              forensics.str().c_str());
  std::printf(
      "paper shape: first-layer injection shows the widest difference "
      "range; the (large) middle layer absorbs flips and shows the "
      "narrowest; the last layer sits between, limited by reduced "
      "backpropagation reach. the forensics table gives the step-resolved "
      "view: depth = distinct layers whose probe stats left the clean "
      "trajectory.\n");
  return 0;
}
