// Figure 6: propagation of errors through the network (TensorFlow/AlexNet).
//
// Inject 1000 bit-flips into one layer at the restart epoch, train onward,
// then compare every weight against the error-free twin at the same epoch.
// The paper reports boxplots of the non-zero weight differences per
// injected layer: first-layer injection spreads the widest, the middle
// layer absorbs, the last layer sits in between.
//
// The per-layer campaigns fan out on core::TrialScheduler (--jobs N): one
// trial per layer, boxplot stats land in index slots and rows are emitted
// in layer order, so output is --jobs invariant.
#include <cmath>

#include "bench/common.hpp"
#include "core/corrupter.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ckptfi;
using bench::BenchOptions;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv, bench::trained_defaults());
  bench::print_banner("Figure 6: soft error propagation, tensorflow/alexnet",
                      opt);
  bench::TrialRows trials_out(opt.trials_out);

  core::ExperimentRunner runner(
      bench::make_config(opt, "tensorflow", "alexnet"));
  const std::size_t compare_epoch = runner.config().total_epochs;

  // Error-free weights at the comparison epoch (paper: epoch 30 = inject at
  // 20 + 10 epochs of training).
  const auto clean_weights =
      runner.weights_of(runner.checkpoint_at(compare_epoch));

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"first (conv1)", "conv1"},
      {"middle (conv4)", "conv4"},
      {"last (fc8)", "fc8"}};

  core::TextTable table({"injected layer", "diff weights", "q1", "median",
                         "q3", "whisker-lo", "whisker-hi", "outliers"});

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);

  struct LayerResult {
    std::size_t n_diffs = 0;
    BoxplotStats box{};
  };
  std::vector<LayerResult> results(layers.size());
  std::vector<Json> rows(layers.size());
  bench::make_scheduler(opt, "fig6/propagation")
      .run(layers.size(), [&](const core::TrialContext& trial) {
        const std::string& layer = layers[trial.index].second;
        mh5::File ckpt = runner.restart_checkpoint();
        core::CorrupterConfig cc;
        cc.injection_attempts = 1000;
        cc.corruption_mode = core::CorruptionMode::BitRange;
        cc.first_bit = 0;
        cc.last_bit = 61;
        cc.use_random_locations = false;
        cc.locations_to_corrupt = {"model_weights/" + layer};
        cc.seed = trial.seed;
        core::Corrupter corrupter(cc);
        corrupter.corrupt(ckpt, &ctx);

        auto [res, trained] = runner.resume_training_with_model(ckpt);
        (void)res;

        // Differences between corrupted-then-trained weights and the clean
        // twin; only weights with differences are used (paper).
        std::vector<double> diffs;
        for (const auto& p : trained->params()) {
          const auto& clean = clean_weights.at(p.name);
          for (std::size_t i = 0; i < clean.size(); ++i) {
            const double d = (*p.value)[i] - clean[i];
            if (d != 0.0 && std::isfinite(d)) diffs.push_back(std::fabs(d));
          }
        }
        LayerResult& slot = results[trial.index];
        slot.n_diffs = diffs.size();
        if (!diffs.empty()) slot.box = boxplot_stats(diffs);
        if (trials_out.enabled()) {
          Json row = Json::object();
          row["cell"] = "fig6/propagation";
          row["trial"] = trial.index;
          row["seed"] = std::to_string(trial.seed);
          row["layer"] = layer;
          row["diff_weights"] = diffs.size();
          row["median"] = diffs.empty() ? 0.0 : slot.box.median;
          rows[trial.index] = std::move(row);
        }
        std::printf(".");
        std::fflush(stdout);
      });
  trials_out.flush_cell(rows);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerResult& r = results[i];
    if (r.n_diffs == 0) {
      table.add_row({layers[i].first, "0", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({layers[i].first, std::to_string(r.n_diffs),
                   format_fixed(r.box.q1, 6), format_fixed(r.box.median, 6),
                   format_fixed(r.box.q3, 6),
                   format_fixed(r.box.whisker_lo, 6),
                   format_fixed(r.box.whisker_hi, 6),
                   std::to_string(r.box.n_outliers)});
  }
  std::printf("\n\n%s\n", table.str().c_str());
  std::printf(
      "paper shape: first-layer injection shows the widest difference "
      "range; the (large) middle layer absorbs flips and shows the "
      "narrowest; the last layer sits between, limited by reduced "
      "backpropagation reach.\n");
  return 0;
}
