// ckptfi-fleetd CLI. Typical loopback run:
//
//   bench_table4 --fleet-manifest=campaign.json ...   # export, don't run
//   ckptfi-fleetd --manifest=campaign.json --trials-out=trials.jsonl &
//   ckptfi-worker --port=NNNN &  (xN)
//
// The merged trials.jsonl is byte-identical to the single-process bench's
// --trials-out. A killed fleetd leaves trials.jsonl.tmp; rerun with
// --resume-from=trials.jsonl.tmp to heal. See docs/FLEET.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fleetd.hpp"
#include "util/common.hpp"

using namespace ckptfi;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --manifest=PATH --trials-out=PATH [options]\n"
      "  --manifest=PATH          campaign manifest (bench --fleet-manifest)\n"
      "  --trials-out=PATH        merged JSONL artifact to write\n"
      "  --resume-from=PATH       prior artifact to heal from\n"
      "  --port=N                 listen port (default 0 = ephemeral)\n"
      "  --port-file=PATH         write the bound port here\n"
      "  --shard-trials=N         max trials per lease (default 2)\n"
      "  --lease-timeout=SECONDS  silence budget per lease (default 60)\n"
      "  --checkpoint-every=SECONDS  artifact checkpoint cadence (default 5)\n",
      argv0);
}

/// --key=value numeric parsing that names the flag instead of dying with an
/// uncaught std::invalid_argument (the bench harnesses' bugfix, applied here
/// from the start).
std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "ckptfi-fleetd: --%s wants a number, got '%s'\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
}

double parse_seconds(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size() || v < 0.0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "ckptfi-fleetd: --%s wants seconds, got '%s'\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetdOptions opts;
  std::string manifest_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      usage(argv[0]);
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "manifest") {
      manifest_path = value;
    } else if (key == "trials-out") {
      opts.trials_out = value;
    } else if (key == "resume-from") {
      opts.resume_from = value;
    } else if (key == "port") {
      opts.port = static_cast<std::uint16_t>(parse_u64(key, value));
    } else if (key == "port-file") {
      opts.port_file = value;
    } else if (key == "shard-trials") {
      opts.shard_trials = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "lease-timeout") {
      opts.lease_timeout_s = parse_seconds(key, value);
    } else if (key == "checkpoint-every") {
      opts.checkpoint_every_s = parse_seconds(key, value);
    } else {
      std::fprintf(stderr, "ckptfi-fleetd: unknown option --%s\n",
                   key.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (manifest_path.empty() || opts.trials_out.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    std::ifstream in(manifest_path);
    if (!in) {
      std::fprintf(stderr, "ckptfi-fleetd: cannot read manifest '%s'\n",
                   manifest_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    opts.manifest = Json::parse(buf.str());

    fleet::Fleetd fleetd(std::move(opts));
    fleetd.start();
    std::printf("ckptfi-fleetd: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(fleetd.port()));
    std::fflush(stdout);
    const fleet::FleetdStats st = fleetd.run();
    std::printf(
        "ckptfi-fleetd: campaign complete — %zu rows (%zu resumed), "
        "%zu shards issued (%zu re-issued), %zu worker death(s)\n",
        st.rows_streamed + st.rows_resumed, st.rows_resumed,
        st.shards_issued, st.shards_reissued, st.worker_deaths);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ckptfi-fleetd: %s\n", e.what());
    return 1;
  }
}
