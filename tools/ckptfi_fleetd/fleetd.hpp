// ckptfi-fleetd: the campaign fleet coordinator.
//
// Splits a campaign manifest (core::campaign_manifest) into shards —
// contiguous trial ranges within a cell — and leases them to ckptfi-worker
// processes over the framed TCP protocol in net/frame.hpp. Workers stream
// back one ROWS frame per finished trial carrying the trial's JSONL line
// verbatim; the coordinator merges rows by (cell, trial) and writes the
// --trials-out artifact in artifact order (cells in manifest order, trial
// index ascending), byte-identical to a single-process bench run.
//
// Fault tolerance, both directions:
//   - a worker that dies (EOF, socket error, or lease deadline passed with
//     no ROWS/HEARTBEAT) gets its lease revoked; the shard's still-missing
//     trials are re-queued and re-issued. Re-execution is bitwise-identical
//     (per-trial seeds are pure functions of (seed, cell, index)), so rows
//     that did arrive before the death are kept and double-completed trials
//     dedupe trivially.
//   - the coordinator itself checkpoints the merged artifact to
//     `--trials-out + ".tmp"` after every completed shard (and periodically),
//     so a killed fleetd leaves a well-formed partial artifact that a rerun
//     heals from via --resume-from. The final artifact is committed with an
//     atomic rename (core::TrialLogWriter).
//
// Single-threaded: one poll() loop owns the listener and every worker
// socket. Workers with nothing to do are parked (no reply to their DONE)
// until a shard frees up or the campaign drains, at which point they are
// dismissed with an empty lease.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/campaign.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "util/json.hpp"

namespace ckptfi::fleet {

struct FleetdOptions {
  Json manifest;             ///< core::campaign_manifest output
  std::string trials_out;    ///< merged JSONL artifact (required)
  std::string resume_from;   ///< prior artifact to heal from ("" = none)
  std::uint16_t port = 0;    ///< 0 = ephemeral (read back via Fleetd::port())
  std::string port_file;     ///< write the bound port here ("" = don't)
  std::size_t shard_trials = 2;    ///< max trials per lease
  double lease_timeout_s = 60.0;   ///< silence budget before a lease revokes
  double checkpoint_every_s = 5.0; ///< periodic artifact checkpoint cadence
};

struct FleetdStats {
  std::size_t shards_issued = 0;    ///< leases sent (including re-issues)
  std::size_t shards_reissued = 0;  ///< re-queued shard fragments
  std::size_t rows_streamed = 0;    ///< ROWS payload rows received
  std::size_t rows_resumed = 0;     ///< rows carried over from --resume-from
  std::size_t worker_deaths = 0;    ///< connections lost holding a lease
  std::size_t workers_seen = 0;     ///< HELLOs accepted
};

class Fleetd {
 public:
  /// Binds the listener (NetError on failure); port() is live immediately.
  explicit Fleetd(FleetdOptions opts);

  /// Build the campaign from the manifest, load --resume-from, build the
  /// shard queue. Throws Error/FormatError on a bad manifest, unreadable
  /// resume file, or fingerprint mismatch.
  void start();

  std::uint16_t port() const { return listener_.port(); }

  /// Serve until every trial row is present and all leases have resolved,
  /// then commit the artifact and dismiss the workers. Returns the stats.
  FleetdStats run();

  const FleetdStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::string cell;
    std::size_t begin = 0;
    std::size_t end = 0;  ///< exclusive
  };

  struct Conn {
    std::uint64_t id = 0;
    net::Socket sock;
    bool helloed = false;
    int lease = -1;  ///< -1 = idle (parked once the queue is empty)
  };

  struct Lease {
    Shard shard;
    std::uint64_t conn_id = 0;
    Clock::time_point deadline;
  };

  bool complete() const {
    return rows_.size() == expected_ && leases_.empty();
  }

  void enqueue_missing(const std::string& cell, std::size_t begin,
                       std::size_t end, bool reissue);
  void pump_leases();
  void issue(Conn& conn, Shard shard);
  void handle_frame(Conn& conn, const net::Message& msg);
  void drop_conn(std::list<Conn>::iterator it, const char* why);
  void expire_leases();
  void touch(int lease_id);
  void checkpoint(bool final_commit);

  FleetdOptions opts_;
  std::unique_ptr<core::Campaign> campaign_;
  std::string fp_hex_;
  net::Listener listener_;

  /// Merged rows keyed (cell, trial); values are verbatim JSONL lines.
  std::map<std::pair<std::string, std::size_t>, std::string> rows_;
  std::size_t expected_ = 0;

  std::deque<Shard> queue_;
  std::map<int, Lease> leases_;
  int next_lease_ = 0;
  std::uint64_t next_conn_ = 0;
  std::list<Conn> conns_;

  Clock::time_point last_checkpoint_;
  bool dirty_ = false;  ///< rows arrived since the last checkpoint
  FleetdStats stats_;
};

}  // namespace ckptfi::fleet
