#include "fleetd.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/trial_log.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace ckptfi::fleet {

Fleetd::Fleetd(FleetdOptions opts)
    : opts_(std::move(opts)), listener_(opts_.port) {}

void Fleetd::start() {
  campaign_ = core::campaign_from_manifest(opts_.manifest);
  fp_hex_ = campaign_->options().fingerprint_hex();
  if (opts_.trials_out.empty()) {
    throw Error("fleetd: --trials-out is required (it IS the fleet's output)");
  }

  expected_ = 0;
  for (const core::CampaignCell& c : campaign_->cells()) expected_ += c.trials;

  if (!opts_.resume_from.empty()) {
    core::TrialLogReader prior;
    prior.load(opts_.resume_from, fp_hex_);
    for (const auto& [key, row] : prior.rows()) {
      rows_.emplace(key, row.line);
    }
    // Drop rows outside the manifest's cells/ranges (a shrunk campaign):
    // they are the same campaign's rows, just no longer asked for.
    std::size_t kept = 0;
    std::map<std::pair<std::string, std::size_t>, std::string> trimmed;
    for (const core::CampaignCell& c : campaign_->cells()) {
      for (std::size_t i = 0; i < c.trials; ++i) {
        const auto hit = rows_.find({c.name, i});
        if (hit != rows_.end()) {
          trimmed.emplace(hit->first, std::move(hit->second));
          ++kept;
        }
      }
    }
    rows_ = std::move(trimmed);
    stats_.rows_resumed = kept;
  }

  for (const core::CampaignCell& c : campaign_->cells()) {
    enqueue_missing(c.name, 0, c.trials, /*reissue=*/false);
  }

  if (!opts_.port_file.empty()) {
    std::ofstream pf(opts_.port_file, std::ios::trunc);
    if (!pf) throw Error("fleetd: cannot write port file " + opts_.port_file);
    pf << listener_.port() << "\n";
  }
  last_checkpoint_ = Clock::now();
}

void Fleetd::enqueue_missing(const std::string& cell, std::size_t begin,
                             std::size_t end, bool reissue) {
  // Contiguous runs of missing trials, chopped to shard_trials-sized leases.
  const std::size_t cap = std::max<std::size_t>(1, opts_.shard_trials);
  std::size_t i = begin;
  while (i < end) {
    if (rows_.count({cell, i}) != 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < end && j - i < cap && rows_.count({cell, j}) == 0) ++j;
    queue_.push_back({cell, i, j});
    if (reissue) {
      ++stats_.shards_reissued;
      obs::counter_add("fleet.shards_reissued");
    }
    i = j;
  }
}

void Fleetd::issue(Conn& conn, Shard shard) {
  Json j = Json::object();
  j["lease"] = next_lease_;
  j["cell"] = shard.cell;
  j["begin"] = shard.begin;
  j["end"] = shard.end;
  j["manifest"] = opts_.manifest;
  net::send_message(conn.sock, net::MsgType::Lease, j);
  conn.lease = next_lease_;
  Lease lease;
  lease.shard = std::move(shard);
  lease.conn_id = conn.id;
  lease.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.lease_timeout_s));
  leases_.emplace(next_lease_, std::move(lease));
  ++next_lease_;
  ++stats_.shards_issued;
  obs::counter_add("fleet.shards_issued");
}

void Fleetd::pump_leases() {
  auto it = conns_.begin();
  while (it != conns_.end() && !queue_.empty()) {
    if (!it->helloed || it->lease != -1) {
      ++it;
      continue;
    }
    Shard shard = queue_.front();
    queue_.pop_front();
    try {
      issue(*it, shard);
      ++it;
    } catch (const net::NetError& e) {
      // The worker vanished between frames; the shard goes back to the
      // queue head and the next pump hands it to someone alive. issue()
      // sends before it records the lease, so there is nothing to unwind.
      std::fprintf(stderr, "fleetd: worker lost while leasing: %s\n",
                   e.what());
      queue_.push_front(std::move(shard));
      it = conns_.erase(it);
    }
  }
}

void Fleetd::touch(int lease_id) {
  const auto hit = leases_.find(lease_id);
  if (hit == leases_.end()) return;
  hit->second.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.lease_timeout_s));
}

void Fleetd::handle_frame(Conn& conn, const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::Hello: {
      const Json j = msg.json();
      const auto version = j.at("version").as_int();
      if (version != net::kProtocolVersion) {
        throw net::NetError("worker speaks protocol v" +
                            std::to_string(version) + ", this fleetd is v" +
                            std::to_string(net::kProtocolVersion));
      }
      Json ack = Json::object();
      ack["version"] = net::kProtocolVersion;
      net::send_message(conn.sock, net::MsgType::Hello, ack);
      conn.helloed = true;
      ++stats_.workers_seen;
      obs::gauge_set("fleet.workers", static_cast<double>(conns_.size()));
      return;
    }
    case net::MsgType::Rows: {
      const Json j = msg.json();
      touch(static_cast<int>(j.at("lease").as_int()));
      const std::string cell = j.at("cell").as_string();
      for (const Json& r : j.at("rows").items()) {
        const auto trial = static_cast<std::size_t>(r.at("trial").as_int());
        ++stats_.rows_streamed;
        obs::counter_add("fleet.rows_streamed");
        // Dedupe by (cell, trial): a re-issued shard's duplicate rows are
        // bitwise-identical by the determinism contract, first write wins.
        rows_.emplace(std::make_pair(cell, trial), r.at("line").as_string());
      }
      dirty_ = true;
      return;
    }
    case net::MsgType::Done: {
      const Json j = msg.json();
      const int lease_id = static_cast<int>(j.at("lease").as_int());
      const auto hit = leases_.find(lease_id);
      if (hit != leases_.end()) {
        const Shard shard = hit->second.shard;
        leases_.erase(hit);
        // A DONE with rows still missing is a worker bug, not a death — but
        // the campaign must finish either way, so re-queue the gap.
        enqueue_missing(shard.cell, shard.begin, shard.end, /*reissue=*/true);
      }
      conn.lease = -1;
      checkpoint(/*final_commit=*/false);
      return;
    }
    case net::MsgType::Heartbeat: {
      const Json j = msg.json();
      obs::Span span("fleet.heartbeat", "fleet");
      touch(static_cast<int>(j.at("lease").as_int()));
      return;
    }
    case net::MsgType::Lease:
      throw net::NetError("worker sent a LEASE frame (coordinator-only)");
  }
  throw net::NetError("unhandled frame type");
}

void Fleetd::drop_conn(std::list<Conn>::iterator it, const char* why) {
  if (it->lease != -1) {
    const auto hit = leases_.find(it->lease);
    if (hit != leases_.end()) {
      const Shard shard = hit->second.shard;
      leases_.erase(hit);
      ++stats_.worker_deaths;
      obs::counter_add("fleet.worker_deaths");
      std::fprintf(stderr,
                   "fleetd: worker died holding %s[%zu,%zu) (%s); "
                   "re-queuing its missing trials\n",
                   shard.cell.c_str(), shard.begin, shard.end, why);
      enqueue_missing(shard.cell, shard.begin, shard.end, /*reissue=*/true);
    }
  }
  conns_.erase(it);
  obs::gauge_set("fleet.workers", static_cast<double>(conns_.size()));
}

void Fleetd::expire_leases() {
  const auto now = Clock::now();
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline > now) {
      ++it;
      continue;
    }
    const std::uint64_t conn_id = it->second.conn_id;
    ++it;  // drop_conn erases the lease entry itself
    const auto conn = std::find_if(conns_.begin(), conns_.end(),
                                   [&](const Conn& c) {
                                     return c.id == conn_id;
                                   });
    if (conn != conns_.end()) {
      drop_conn(conn, "lease deadline passed");
    }
  }
}

void Fleetd::checkpoint(bool final_commit) {
  if (!final_commit) {
    if (!dirty_) return;
    const double since = std::chrono::duration<double>(Clock::now() -
                                                       last_checkpoint_)
                             .count();
    // DONE-triggered checkpoints ride through here too; rate-limit them so a
    // flood of tiny shards does not turn into quadratic rewriting.
    if (since < opts_.checkpoint_every_s && rows_.size() != expected_) return;
  }
  // Full rewrite of the merged artifact in artifact order (gaps skipped),
  // left at `path + ".tmp"` until the final commit renames it into place —
  // a killed fleetd leaves the temp as its crash-survival artifact.
  core::TrialLogWriter w;
  w.open(opts_.trials_out);
  for (const core::CampaignCell& c : campaign_->cells()) {
    for (std::size_t i = 0; i < c.trials; ++i) {
      const auto hit = rows_.find({c.name, i});
      if (hit != rows_.end()) w.write_line(hit->second);
    }
  }
  if (final_commit) {
    w.commit();
  } else {
    w.flush();
  }
  dirty_ = false;
  last_checkpoint_ = Clock::now();
}

FleetdStats Fleetd::run() {
  while (!complete()) {
    pump_leases();

    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const Conn& c : conns_) fds.push_back({c.sock.fd(), POLLIN, 0});
    const int timeout_ms = std::max(
        50, static_cast<int>(1000.0 *
                             std::min(opts_.lease_timeout_s / 4.0,
                                      opts_.checkpoint_every_s)));
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw net::NetError("fleetd: poll failed");
    }

    if ((fds[0].revents & POLLIN) != 0) {
      Conn conn;
      conn.id = next_conn_++;
      conn.sock = listener_.accept();
      conn.sock.set_recv_timeout(opts_.lease_timeout_s);
      conns_.push_back(std::move(conn));
    }

    std::size_t slot = 1;
    for (auto it = conns_.begin(); it != conns_.end(); ++slot) {
      if (slot >= fds.size() || fds[slot].fd != it->sock.fd() ||
          (fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        ++it;
        continue;
      }
      auto next = std::next(it);
      try {
        net::Message msg;
        if (!net::recv_message(it->sock, msg)) {
          drop_conn(it, "disconnected");
        } else {
          handle_frame(*it, msg);
        }
      } catch (const std::exception& e) {
        drop_conn(it, e.what());
      }
      it = next;
    }

    expire_leases();
    checkpoint(/*final_commit=*/false);
  }

  checkpoint(/*final_commit=*/true);

  // Drain: every connected worker gets the empty lease and a close. A send
  // failing here just means the worker is already gone.
  for (Conn& c : conns_) {
    try {
      Json bye = Json::object();
      bye["lease"] = -1;
      net::send_message(c.sock, net::MsgType::Lease, bye);
    } catch (const net::NetError&) {
    }
  }
  conns_.clear();
  listener_.close();

  Json f = Json::object();
  f["rows"] = rows_.size();
  f["shards_issued"] = stats_.shards_issued;
  f["shards_reissued"] = stats_.shards_reissued;
  f["worker_deaths"] = stats_.worker_deaths;
  obs::emit_event("fleet_complete", std::move(f));
  return stats_;
}

}  // namespace ckptfi::fleet
