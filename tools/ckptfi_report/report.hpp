// ckptfi-report: campaign forensics from --trials-out JSONL artifacts.
//
// Every campaign bench can emit one JSON row per trial (outcome, injection
// log, divergence trace). This analyzer re-derives the paper's summary
// numbers from those rows alone — per-cell N-EV/SDC/masked breakdowns,
// per-layer and per-bit sensitivity tables, and a propagation-depth
// histogram — so a finished campaign can be sliced after the fact without
// rerunning a single training.
//
// Split into a library so the tests can drive the classifier and aggregator
// in-process and cross-check them against a live bench run's own table.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ckptfi::report {

/// Trial outcome taxonomy (paper section V):
///   nev    — training collapsed with NaN/extreme values;
///   sdc    — finished, but silently off the clean baseline (accuracy or
///            probe timeline differs);
///   masked — finished bitwise on the clean baseline (the paper's RWC);
///   unknown — the row carries too little to classify.
enum class Outcome { kNev, kSdc, kMasked, kUnknown };

const char* outcome_name(Outcome o);

/// Classify one trial row. Signals, strongest first:
///   1. "collapsed": true            -> nev
///   2. "rwc" present                -> true: masked, false: sdc
///   3. "clean_accuracy" present     -> equal to "final_accuracy": masked,
///                                      else sdc
///   4. "divergence" present         -> diverged: sdc, else masked
///   5. otherwise                    -> unknown
Outcome classify_trial(const Json& row);

struct OutcomeCounts {
  std::size_t trials = 0;
  std::size_t nev = 0;
  std::size_t sdc = 0;
  std::size_t masked = 0;
  std::size_t unknown = 0;

  void add(Outcome o);
  Json to_json() const;
};

/// Aggregated view over a set of trial rows.
struct Analysis {
  OutcomeCounts total;
  /// Keyed by the row's "cell" ("" when absent).
  std::map<std::string, OutcomeCounts> by_cell;
  /// Keyed by injected layer (from the injection log; the raw location when
  /// no canonical layer was recorded). A trial whose log touches k layers
  /// contributes its outcome to each of the k.
  std::map<std::string, OutcomeCounts> by_layer;
  /// Keyed by flipped bit position; multi-bit trials contribute per bit.
  std::map<int, OutcomeCounts> by_bit;
  /// Propagation-depth histogram over divergence-traced trials:
  /// depth (distinct layers reached) -> trial count. Depth 0 = no
  /// divergence.
  std::map<std::size_t, std::size_t> depth_histogram;
  std::size_t with_divergence = 0;  ///< rows carrying a divergence trace
  std::size_t diverged = 0;         ///< ... of which actually diverged
  std::size_t nan_onsets = 0;       ///< traces with a NaN onset coordinate

  Json to_json() const;
};

Analysis analyze(const std::vector<Json>& rows);

/// Parse one JSONL file (one JSON object per line; blank lines skipped).
/// Throws util Error on unreadable files or malformed lines.
std::vector<Json> load_jsonl(const std::string& path);

/// Render the human-readable report (the text the CLI prints).
std::string render_text(const Analysis& a);

/// Extract the prefix-reuse telemetry from a bench --json-out metrics
/// snapshot: every "prefix.*" counter (hits, misses, spills, reloads,
/// segments_skipped, unsafe_refusals) plus the "prefix.bytes_cached" gauge.
/// Returns an insertion-ordered flat object; empty when the snapshot
/// carries no prefix activity (prefix reuse off, or no layer-targeted
/// trials).
Json prefix_metrics(const Json& snapshot);

/// Render the prefix-reuse section of the report ("" when `metrics` is
/// empty).
std::string render_prefix_metrics(const Json& metrics);

/// Extract the kernel-compute telemetry from a bench --json-out metrics
/// snapshot: every "kernels.*" histogram (gemm_time, im2col_time — seconds
/// per dispatched call) summarised as count/mean/p50/p99/max, plus the
/// active backend tier, simd ISA and GEMM precision stamped on the run's
/// run_start event. Empty when the snapshot carries neither.
Json kernel_metrics(const Json& snapshot);

/// Render the kernel-compute section of the report ("" when `metrics` is
/// empty).
std::string render_kernel_metrics(const Json& metrics);

}  // namespace ckptfi::report
