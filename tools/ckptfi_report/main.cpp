// ckptfi-report CLI: aggregate --trials-out JSONL campaign artifacts into
// sensitivity tables and a propagation-depth breakdown.
//
// usage: ckptfi_report [--json=PATH] [--cell=SUBSTRING] [--metrics=PATH]
//     trials.jsonl [...]
//
//   --json=PATH       also write the full analysis as JSON to PATH
//   --cell=SUBSTRING  only analyze rows whose "cell" contains SUBSTRING
//   --metrics=PATH    read a bench --json-out metrics snapshot and report
//                     its prefix-reuse telemetry (prefix.hits/misses/
//                     spills/reloads/segments_skipped, bytes cached) and
//                     its kernel-compute telemetry (kernels.* timing
//                     histograms, active backend tier / simd ISA / GEMM
//                     precision from the run_start event)
//
// Positional arguments (and --in=PATH, equivalently) name JSONL files as
// written by any campaign bench's --trials-out; multiple files concatenate,
// so a sharded campaign can be analyzed in one call.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json=PATH] [--cell=SUBSTRING] "
               "[--metrics=PATH] trials.jsonl [more.jsonl ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string json_out;
  std::string cell_filter;
  std::string metrics_in;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      inputs.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) return usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    if (key == "in") {
      inputs.push_back(val);
    } else if (key == "json") {
      json_out = val;
    } else if (key == "cell") {
      cell_filter = val;
    } else if (key == "metrics") {
      metrics_in = val;
    } else {
      std::fprintf(stderr, "unknown option --%s\n", key.c_str());
      return usage(argv[0]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  try {
    std::vector<ckptfi::Json> rows;
    for (const std::string& path : inputs) {
      for (auto& row : ckptfi::report::load_jsonl(path)) {
        if (!cell_filter.empty()) {
          const std::string cell =
              row.contains("cell") ? row.at("cell").as_string() : "";
          if (cell.find(cell_filter) == std::string::npos) continue;
        }
        rows.push_back(std::move(row));
      }
    }
    const ckptfi::report::Analysis analysis = ckptfi::report::analyze(rows);
    std::fputs(ckptfi::report::render_text(analysis).c_str(), stdout);
    ckptfi::Json prefix = ckptfi::Json::object();
    ckptfi::Json kernels = ckptfi::Json::object();
    if (!metrics_in.empty()) {
      std::ifstream min(metrics_in);
      if (!min) {
        std::fprintf(stderr, "ckptfi-report: cannot read '%s'\n",
                     metrics_in.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << min.rdbuf();
      const ckptfi::Json snapshot = ckptfi::Json::parse(buf.str());
      prefix = ckptfi::report::prefix_metrics(snapshot);
      const std::string section = ckptfi::report::render_prefix_metrics(prefix);
      std::fputs(section.empty()
                     ? "no prefix-reuse activity in the metrics snapshot\n"
                     : section.c_str(),
                 stdout);
      kernels = ckptfi::report::kernel_metrics(snapshot);
      const std::string ksection =
          ckptfi::report::render_kernel_metrics(kernels);
      if (!ksection.empty()) std::fputs(ksection.c_str(), stdout);
    }
    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "ckptfi-report: cannot write '%s'\n",
                     json_out.c_str());
        return 1;
      }
      ckptfi::Json j = analysis.to_json();
      if (!metrics_in.empty()) {
        j["prefix_reuse"] = std::move(prefix);
        j["kernels"] = std::move(kernels);
      }
      out << j.dump(2) << "\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
