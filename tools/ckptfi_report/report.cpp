#include "report.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "core/report.hpp"
#include "util/common.hpp"
#include "util/strings.hpp"

namespace ckptfi::report {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kNev:
      return "nev";
    case Outcome::kSdc:
      return "sdc";
    case Outcome::kMasked:
      return "masked";
    case Outcome::kUnknown:
      break;
  }
  return "unknown";
}

Outcome classify_trial(const Json& row) {
  if (row.contains("collapsed") && row.at("collapsed").as_bool())
    return Outcome::kNev;
  if (row.contains("rwc"))
    return row.at("rwc").as_bool() ? Outcome::kMasked : Outcome::kSdc;
  if (row.contains("clean_accuracy") && row.contains("final_accuracy")) {
    // Bitwise accuracy equality: the determinism contract makes the clean
    // resumed accuracy exact, so any difference is injection-caused.
    return row.at("final_accuracy").as_double() ==
                   row.at("clean_accuracy").as_double()
               ? Outcome::kMasked
               : Outcome::kSdc;
  }
  if (row.contains("divergence") && row.at("divergence").is_object()) {
    return row.at("divergence").at("diverged").as_bool() ? Outcome::kSdc
                                                         : Outcome::kMasked;
  }
  return Outcome::kUnknown;
}

void OutcomeCounts::add(Outcome o) {
  ++trials;
  switch (o) {
    case Outcome::kNev:
      ++nev;
      break;
    case Outcome::kSdc:
      ++sdc;
      break;
    case Outcome::kMasked:
      ++masked;
      break;
    case Outcome::kUnknown:
      ++unknown;
      break;
  }
}

Json OutcomeCounts::to_json() const {
  Json j = Json::object();
  j["trials"] = trials;
  j["nev"] = nev;
  j["sdc"] = sdc;
  j["masked"] = masked;
  j["unknown"] = unknown;
  return j;
}

namespace {

/// Distinct injected layers of one trial's log ("layer" when canonical
/// coordinates were recorded, the raw "location" otherwise).
std::set<std::string> injected_layers(const Json& log) {
  std::set<std::string> layers;
  if (!log.contains("injections")) return layers;
  for (const auto& inj : log.at("injections").items()) {
    if (inj.contains("layer")) {
      layers.insert(inj.at("layer").as_string());
    } else if (inj.contains("location")) {
      layers.insert(inj.at("location").as_string());
    }
  }
  return layers;
}

/// Distinct flipped bit positions of one trial's log.
std::set<int> flipped_bits(const Json& log) {
  std::set<int> bits;
  if (!log.contains("injections")) return bits;
  for (const auto& inj : log.at("injections").items()) {
    if (!inj.contains("bits")) continue;
    for (const auto& b : inj.at("bits").items())
      bits.insert(static_cast<int>(b.as_int()));
  }
  return bits;
}

}  // namespace

Analysis analyze(const std::vector<Json>& rows) {
  Analysis a;
  for (const Json& row : rows) {
    const Outcome o = classify_trial(row);
    a.total.add(o);
    const std::string cell =
        row.contains("cell") ? row.at("cell").as_string() : "";
    a.by_cell[cell].add(o);
    if (row.contains("log")) {
      const Json& log = row.at("log");
      for (const std::string& layer : injected_layers(log))
        a.by_layer[layer].add(o);
      for (const int bit : flipped_bits(log)) a.by_bit[bit].add(o);
    }
    if (row.contains("divergence") && row.at("divergence").is_object()) {
      const Json& div = row.at("divergence");
      ++a.with_divergence;
      const bool diverged = div.at("diverged").as_bool();
      if (diverged) ++a.diverged;
      const auto depth =
          diverged ? static_cast<std::size_t>(div.at("depth").as_int()) : 0;
      ++a.depth_histogram[depth];
      if (div.contains("nan_onset") && div.at("nan_onset").is_object())
        ++a.nan_onsets;
    }
  }
  return a;
}

Json Analysis::to_json() const {
  Json j = Json::object();
  j["total"] = total.to_json();
  Json cells = Json::object();
  for (const auto& [cell, counts] : by_cell) cells[cell] = counts.to_json();
  j["by_cell"] = std::move(cells);
  Json layers = Json::object();
  for (const auto& [layer, counts] : by_layer)
    layers[layer] = counts.to_json();
  j["by_layer"] = std::move(layers);
  Json bits = Json::object();
  for (const auto& [bit, counts] : by_bit)
    bits[std::to_string(bit)] = counts.to_json();
  j["by_bit"] = std::move(bits);
  Json depths = Json::object();
  for (const auto& [depth, n] : depth_histogram)
    depths[std::to_string(depth)] = n;
  j["depth_histogram"] = std::move(depths);
  j["with_divergence"] = with_divergence;
  j["diverged"] = diverged;
  j["nan_onsets"] = nan_onsets;
  return j;
}

std::vector<Json> load_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("ckptfi-report: cannot open '" + path + "'");
  std::vector<Json> rows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      rows.push_back(Json::parse(line));
    } catch (const std::exception& e) {
      throw Error("ckptfi-report: " + path + ":" + std::to_string(lineno) +
                  ": " + e.what());
    }
  }
  return rows;
}

namespace {

std::string pct(std::size_t part, std::size_t whole) {
  if (whole == 0) return "-";
  return format_fixed(
      100.0 * static_cast<double>(part) / static_cast<double>(whole), 1);
}

void add_counts_row(core::TextTable& table, const std::string& key,
                    const OutcomeCounts& c) {
  table.add_row({key, std::to_string(c.trials), std::to_string(c.nev),
                 std::to_string(c.sdc), std::to_string(c.masked),
                 std::to_string(c.unknown), pct(c.nev, c.trials),
                 pct(c.sdc, c.trials)});
}

constexpr const char* kCountsHeader[] = {"trials", "N-EV",   "SDC", "masked",
                                         "unknown", "N-EV %", "SDC %"};

std::vector<std::string> counts_header(const std::string& key_col) {
  std::vector<std::string> hdr = {key_col};
  hdr.insert(hdr.end(), std::begin(kCountsHeader), std::end(kCountsHeader));
  return hdr;
}

}  // namespace

std::string render_text(const Analysis& a) {
  std::ostringstream out;
  out << "=== ckptfi-report: campaign forensics ===\n";
  out << a.total.trials << " trials; outcomes: " << a.total.nev << " N-EV, "
      << a.total.sdc << " SDC, " << a.total.masked << " masked, "
      << a.total.unknown << " unknown\n\n";

  {
    core::TextTable table(counts_header("cell"));
    for (const auto& [cell, counts] : a.by_cell)
      add_counts_row(table, cell.empty() ? "(none)" : cell, counts);
    out << "per experiment cell:\n" << table.str() << "\n";
  }

  if (!a.by_layer.empty()) {
    core::TextTable table(counts_header("injected layer"));
    for (const auto& [layer, counts] : a.by_layer)
      add_counts_row(table, layer, counts);
    out << "per injected layer (trials whose log touched the layer):\n"
        << table.str() << "\n";
  }

  if (!a.by_bit.empty()) {
    core::TextTable table(counts_header("bit"));
    for (const auto& [bit, counts] : a.by_bit)
      add_counts_row(table, std::to_string(bit), counts);
    out << "per flipped bit position:\n" << table.str() << "\n";
  }

  if (a.with_divergence > 0) {
    out << "divergence traces: " << a.with_divergence << " trials traced, "
        << a.diverged << " diverged, " << a.nan_onsets << " with a NaN onset\n";
    core::TextTable table({"depth", "trials", ""});
    std::size_t max_n = 1;
    for (const auto& [depth, n] : a.depth_histogram)
      max_n = std::max(max_n, n);
    for (const auto& [depth, n] : a.depth_histogram) {
      const auto bar_len = (n * 40 + max_n - 1) / max_n;
      table.add_row({std::to_string(depth), std::to_string(n),
                     std::string(bar_len, '#')});
    }
    out << "propagation depth (distinct layers reached; 0 = absorbed):\n"
        << table.str();
  }
  return out.str();
}

Json prefix_metrics(const Json& snapshot) {
  Json out = Json::object();
  if (snapshot.contains("counters")) {
    for (const auto& [name, value] : snapshot.at("counters").members()) {
      if (name.rfind("prefix.", 0) == 0) out[name] = value;
    }
  }
  if (snapshot.contains("gauges")) {
    const Json& gauges = snapshot.at("gauges");
    if (gauges.contains("prefix.bytes_cached"))
      out["prefix.bytes_cached"] = gauges.at("prefix.bytes_cached");
  }
  return out;
}

std::string render_prefix_metrics(const Json& metrics) {
  if (metrics.members().empty()) return "";
  std::ostringstream out;
  out << "prefix reuse (from the --json-out metrics snapshot):\n";
  core::TextTable table({"metric", "value"});
  for (const auto& [name, value] : metrics.members()) {
    table.add_row({name, std::to_string(static_cast<long long>(
                             value.as_double()))});
  }
  out << table.str();
  const auto count = [&](const char* k) {
    return metrics.contains(k) ? metrics.at(k).as_double() : 0.0;
  };
  const double hits = count("prefix.hits"), misses = count("prefix.misses");
  if (hits + misses > 0.0) {
    out << "hit rate: "
        << format_fixed(100.0 * hits / (hits + misses), 1) << "%\n";
  }
  return out.str();
}

Json kernel_metrics(const Json& snapshot) {
  Json out = Json::object();
  if (snapshot.contains("events")) {
    for (const auto& e : snapshot.at("events").items()) {
      if (!e.is_object() || !e.contains("type") ||
          e.at("type").as_string() != "run_start")
        continue;
      // The first run_start stamps the run's compute configuration.
      if (e.contains("kernels.backend"))
        out["backend"] = e.at("kernels.backend");
      if (e.contains("kernels.simd_isa"))
        out["simd_isa"] = e.at("kernels.simd_isa");
      if (e.contains("kernels.gemm_precision"))
        out["gemm_precision"] = e.at("kernels.gemm_precision");
      break;
    }
  }
  Json hists = Json::object();
  if (snapshot.contains("histograms")) {
    for (const auto& [name, h] : snapshot.at("histograms").members()) {
      if (name.rfind("kernels.", 0) != 0 || !h.is_object()) continue;
      Json e = Json::object();
      for (const char* k : {"count", "mean", "p50", "p99", "max"}) {
        if (h.contains(k)) e[k] = h.at(k);
      }
      hists[name] = std::move(e);
    }
  }
  if (!hists.members().empty()) out["histograms"] = std::move(hists);
  return out;
}

std::string render_kernel_metrics(const Json& metrics) {
  if (metrics.members().empty()) return "";
  std::ostringstream out;
  out << "kernel compute (from the --json-out metrics snapshot):\n";
  const auto field = [&](const char* k) {
    return metrics.contains(k) ? metrics.at(k).as_string() : std::string("-");
  };
  out << "backend: " << field("backend") << "  simd isa: " << field("simd_isa")
      << "  gemm precision: " << field("gemm_precision") << "\n";
  if (metrics.contains("histograms")) {
    core::TextTable table(
        {"histogram", "count", "mean us", "p50 us", "p99 us", "max us"});
    for (const auto& [name, h] : metrics.at("histograms").members()) {
      const auto us = [&](const char* k) {
        return h.contains(k) ? format_fixed(h.at(k).as_double() * 1e6, 1)
                             : std::string("-");
      };
      const long long count =
          h.contains("count")
              ? static_cast<long long>(h.at("count").as_double())
              : 0;
      table.add_row({name, std::to_string(count), us("mean"), us("p50"),
                     us("p99"), us("max")});
    }
    out << table.str();
  }
  return out.str();
}

}  // namespace ckptfi::report
