// ckptfi-worker CLI: one fleet worker process. See docs/FLEET.md and
// tools/ckptfi_fleetd/main.cpp for the fleet's shape.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "worker.hpp"

using namespace ckptfi;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [options]\n"
      "  --host=ADDR            coordinator address (default 127.0.0.1)\n"
      "  --port=N               coordinator port (required)\n"
      "  --jobs=N               trials in flight per shard (default 1)\n"
      "  --heartbeat=SECONDS    lease-refresh cadence (default 5, 0 = off)\n"
      "  --idle-timeout=SECONDS recv deadline while parked (default 600)\n"
      "  --kill-after-rows=N    test hook: SIGKILL self after N rows\n",
      argv0);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "ckptfi-worker: --%s wants a number, got '%s'\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
}

double parse_seconds(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size() || v < 0.0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "ckptfi-worker: --%s wants seconds, got '%s'\n",
                 key.c_str(), value.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fleet::WorkerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      usage(argv[0]);
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "host") {
      opts.host = value;
    } else if (key == "port") {
      opts.port = static_cast<std::uint16_t>(parse_u64(key, value));
    } else if (key == "jobs") {
      opts.jobs = static_cast<std::size_t>(parse_u64(key, value));
      if (opts.jobs == 0) opts.jobs = 1;
    } else if (key == "heartbeat") {
      opts.heartbeat_s = parse_seconds(key, value);
    } else if (key == "idle-timeout") {
      opts.idle_timeout_s = parse_seconds(key, value);
    } else if (key == "kill-after-rows") {
      opts.kill_after_rows = static_cast<std::size_t>(parse_u64(key, value));
    } else {
      std::fprintf(stderr, "ckptfi-worker: unknown option --%s\n",
                   key.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opts.port == 0) {
    usage(argv[0]);
    return 2;
  }
  return fleet::run_worker(opts);
}
