// ckptfi-worker: executes leased campaign shards for ckptfi-fleetd.
//
// A worker connects to the coordinator, handshakes (HELLO), and then loops:
// receive a LEASE naming a cell and a trial range [begin, end), rebuild the
// campaign from the manifest the lease carries (once — subsequent leases
// must match its fingerprint), prepare the cell, run the shard through
// core::TrialScheduler::run_range, and stream one ROWS frame per finished
// trial back — each carrying the trial's serialized JSONL line verbatim.
// DONE closes the lease; the empty lease ({"lease": -1}) dismisses the
// worker and it exits 0.
//
// Trial rows are pure functions of (campaign, cell, index), so whatever
// worker runs a shard — or re-runs it after another worker's death —
// produces byte-identical lines. The worker holds no durable state at all:
// crash recovery is entirely the coordinator's lease re-issue.
//
// A heartbeat thread refreshes the coordinator's lease deadline while a
// long trial computes. All socket writes (rows, DONE, heartbeats) are
// serialized by one mutex so frames never interleave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ckptfi::fleet {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t jobs = 1;      ///< trials in flight within a leased shard
  double heartbeat_s = 5.0;  ///< lease-refresh cadence (0 = no heartbeats)
  double idle_timeout_s = 600.0;  ///< recv deadline while parked
  /// Test hook: after streaming this many rows, die by raise(SIGKILL) —
  /// the deterministic stand-in for a node loss mid-shard. SIZE_MAX = off.
  std::size_t kill_after_rows = static_cast<std::size_t>(-1);
};

/// Serve until dismissed. Returns the process exit code: 0 after an orderly
/// dismissal, 1 on protocol/network failure (diagnostics on stderr).
int run_worker(const WorkerOptions& opts);

}  // namespace ckptfi::fleet
