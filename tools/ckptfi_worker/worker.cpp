#include "worker.hpp"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "core/campaign.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "util/common.hpp"

namespace ckptfi::fleet {

namespace {

// Lease-refresh side channel. Shares the socket's send mutex with the row
// stream; joined before the socket dies.
class Heartbeat {
 public:
  Heartbeat(net::Socket& sock, std::mutex& send_mu, double period_s)
      : sock_(sock), send_mu_(send_mu), period_s_(period_s) {
    if (period_s_ <= 0.0) return;
    thread_ = std::thread([this] { loop(); });
  }

  ~Heartbeat() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void set_lease(int lease, std::size_t done) {
    lease_.store(lease, std::memory_order_relaxed);
    done_.store(done, std::memory_order_relaxed);
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::duration<double>(period_s_),
                         [this] { return stop_; })) {
      const int lease = lease_.load(std::memory_order_relaxed);
      if (lease < 0) continue;  // parked: nothing to keep alive
      Json j = Json::object();
      j["lease"] = lease;
      j["done"] = done_.load(std::memory_order_relaxed);
      try {
        std::lock_guard send_lock(send_mu_);
        net::send_message(sock_, net::MsgType::Heartbeat, j);
      } catch (const net::NetError&) {
        // The main loop will see the same dead socket; go quiet.
        return;
      }
    }
  }

  net::Socket& sock_;
  std::mutex& send_mu_;
  double period_s_;
  std::atomic<int> lease_{-1};
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int run_worker(const WorkerOptions& opts) {
  try {
    net::Socket sock = net::Socket::connect(opts.host, opts.port);
    sock.set_recv_timeout(opts.idle_timeout_s);

    Json hello = Json::object();
    hello["version"] = net::kProtocolVersion;
    net::send_message(sock, net::MsgType::Hello, hello);
    net::Message ack;
    if (!net::recv_message(sock, ack) || ack.type != net::MsgType::Hello) {
      std::fprintf(stderr, "worker: coordinator refused the handshake\n");
      return 1;
    }
    if (ack.json().at("version").as_int() != net::kProtocolVersion) {
      std::fprintf(stderr, "worker: protocol version mismatch\n");
      return 1;
    }

    std::mutex send_mu;
    Heartbeat heartbeat(sock, send_mu, opts.heartbeat_s);

    std::unique_ptr<core::Campaign> campaign;
    std::size_t rows_streamed = 0;

    for (;;) {
      net::Message msg;
      if (!net::recv_message(sock, msg)) {
        std::fprintf(stderr, "worker: coordinator hung up\n");
        return 1;
      }
      if (msg.type != net::MsgType::Lease) {
        std::fprintf(stderr, "worker: expected LEASE, got %s\n",
                     net::msg_type_name(msg.type));
        return 1;
      }
      const Json j = msg.json();
      const auto lease = static_cast<int>(j.at("lease").as_int());
      if (lease < 0) return 0;  // drained: orderly dismissal

      if (campaign == nullptr) {
        campaign = core::campaign_from_manifest(j.at("manifest"));
      } else {
        // Every lease must belong to the campaign we already built; a
        // coordinator restarted onto a different campaign is a hard error.
        const std::string fp = j.at("manifest").at("fp").as_string();
        if (fp != campaign->options().fingerprint_hex()) {
          std::fprintf(stderr,
                       "worker: lease carries campaign %s but this worker "
                       "built %s; refusing to mix campaigns\n",
                       fp.c_str(),
                       campaign->options().fingerprint_hex().c_str());
          return 1;
        }
      }

      const std::string cell = j.at("cell").as_string();
      const auto begin = static_cast<std::size_t>(j.at("begin").as_int());
      const auto end = static_cast<std::size_t>(j.at("end").as_int());
      heartbeat.set_lease(lease, 0);

      // Baseline training for the cell happens before the shard fans out —
      // the same prepare-then-run shape the single-process benches use, so
      // the heartbeat thread is what keeps the lease alive through it.
      campaign->prepare_cell(cell);

      core::TrialScheduler::Config sc;
      sc.jobs = opts.jobs;
      sc.campaign_seed = campaign->cell_seed(cell);
      core::TrialScheduler(sc).run_range(
          begin, end, [&](const core::TrialContext& trial) {
            const Json row = campaign->run_trial(cell, trial);
            Json rj = Json::object();
            rj["lease"] = lease;
            rj["cell"] = cell;
            Json rows = Json::array();
            Json one = Json::object();
            one["trial"] = trial.index;
            one["line"] = row.dump();
            rows.push_back(std::move(one));
            rj["rows"] = std::move(rows);
            std::lock_guard lock(send_mu);
            net::send_message(sock, net::MsgType::Rows, rj);
            ++rows_streamed;
            heartbeat.set_lease(lease, rows_streamed);
            if (rows_streamed >= opts.kill_after_rows) {
              // Deterministic node-loss fixture: die the hard way, exactly
              // like a kernel OOM-kill or a pulled power cord would.
              std::raise(SIGKILL);
            }
          });

      heartbeat.set_lease(-1, rows_streamed);
      Json done = Json::object();
      done["lease"] = lease;
      std::lock_guard lock(send_mu);
      net::send_message(sock, net::MsgType::Done, done);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace ckptfi::fleet
