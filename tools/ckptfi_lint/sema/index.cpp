// The declaration indexer. One forward pass over the token stream with a
// scope stack: namespace/class scopes contribute to qualified names,
// function bodies collect call sites / lock events / banned-token hits.
// Heuristics err toward over-collection — a call name that resolves to
// nothing creates no graph edge, so junk here is harmless, while a missed
// call is a hole in the transitive rules.
#include "sema/index.hpp"

#include <algorithm>
#include <array>
#include <string_view>

namespace ckptfi::lint::sema {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool in_list(std::string_view needle, const std::vector<std::string_view>& v) {
  return std::find(v.begin(), v.end(), needle) != v.end();
}

/// Identifiers that look like calls but never are.
const std::vector<std::string_view>& not_a_call() {
  static const std::vector<std::string_view> k = {
      "if",        "for",        "while",    "switch",   "return",
      "sizeof",    "alignof",    "alignas",  "catch",    "assert",
      "static_assert",           "decltype", "noexcept", "throw",
      "delete",    "defined",    "typeid",   "co_return","co_await",
      "co_yield",  "int",        "char",     "bool",     "double",
      "float",     "unsigned",   "signed",   "long",     "short",
      "void",      "auto",       "EXPECT_TRUE",          "EXPECT_FALSE",
      "EXPECT_EQ", "EXPECT_NE",  "ASSERT_TRUE",          "ASSERT_EQ"};
  return k;
}

/// Identifier tokens that may legitimately precede a call expression — an
/// identifier before a call that is NOT one of these reads as a declaration
/// ("Foo bar(args)") and is skipped.
const std::vector<std::string_view>& call_context() {
  static const std::vector<std::string_view> k = {
      "return", "throw", "case",      "else",     "do",  "goto",
      "new",    "and",   "or",        "not",      "co_return",
      "co_await", "co_yield"};
  return k;
}

const std::vector<std::string_view>& entropy_always() {
  static const std::vector<std::string_view> k = {
      "random_device", "system_clock", "gettimeofday", "drand48",
      "lrand48",       "rand_r",       "srand",        "srand48"};
  return k;
}
const std::vector<std::string_view>& entropy_calls() {
  static const std::vector<std::string_view> k = {"rand", "time", "clock"};
  return k;
}
const std::vector<std::string_view>& alloc_calls() {
  static const std::vector<std::string_view> k = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc",
      "make_unique", "make_shared"};
  return k;
}
const std::vector<std::string_view>& growth_calls() {
  static const std::vector<std::string_view> k = {
      "push_back", "emplace_back", "reserve", "assign", "insert", "emplace"};
  return k;
}
const std::vector<std::string_view>& lock_decl_types() {
  static const std::vector<std::string_view> k = {"lock_guard", "unique_lock",
                                                  "scoped_lock"};
  return k;
}
const std::vector<std::string_view>& lock_tag_args() {
  static const std::vector<std::string_view> k = {
      "adopt_lock", "defer_lock", "try_to_lock", "adopt_lock_t",
      "defer_lock_t", "try_to_lock_t"};
  return k;
}

std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), open + 64);
  for (std::size_t i = open; i < limit; ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    else if (is_punct(toks[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(toks[i], ";") || is_punct(toks[i], "{") ||
               is_punct(toks[i], "}")) {
      break;
    }
  }
  return open;
}

std::size_t skip_parens(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")") && --depth == 0) return i + 1;
  }
  return toks.size();
}

std::size_t skip_braces(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    else if (is_punct(toks[i], "}") && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Mark '{' tokens that open lambda bodies: "]" [(params)] [specs] "{".
/// Lock context resets inside them — a lambda body runs later, not under the
/// locks live at its capture site (same semantics as tier A's notify rule).
std::vector<char> mark_lambda_braces(const std::vector<Token>& toks) {
  const std::size_t n = toks.size();
  std::vector<char> lambda(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_punct(toks[i], "]")) continue;
    std::size_t j = i + 1;
    if (j < n && is_punct(toks[j], "(")) j = skip_parens(toks, j);
    std::size_t guard = 0;
    while (j < n && guard++ < 24) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        lambda[j] = 1;
        break;
      }
      const bool benign =
          t.kind == TokKind::Identifier || is_punct(t, "->") ||
          is_punct(t, "::") || is_punct(t, "<") || is_punct(t, ">") ||
          is_punct(t, ",") || is_punct(t, "&") || is_punct(t, "*");
      if (!benign) break;
      ++j;
    }
  }
  return lambda;
}

/// Walk back from `pos` (an identifier) over "ident :: ident :: ..." and
/// return the first token index of the qualified name.
std::size_t name_start(const std::vector<Token>& toks, std::size_t pos) {
  std::size_t j = pos;
  while (j >= 2 && is_punct(toks[j - 1], "::") &&
         toks[j - 2].kind == TokKind::Identifier) {
    j -= 2;
  }
  return j;
}

std::string joined_name(const std::vector<Token>& toks, std::size_t start,
                        std::size_t end_incl) {
  std::string name;
  for (std::size_t k = start; k <= end_incl; ++k) {
    if (toks[k].kind == TokKind::Identifier) {
      if (!name.empty()) name += "::";
      name += toks[k].text;
    }
  }
  return name;
}

struct ScopeFrame {
  enum Kind { kNamespace, kClass, kBlock } kind = kBlock;
  std::string name;  ///< namespace/class component ("" for anonymous/blocks)
};

struct ActiveLock {
  int depth;
  std::string id;
  std::string var;  ///< the guard variable name, for .unlock() matching
};

}  // namespace

FileIndex build_index(const std::string& rel_path, const LexedFile& lexed) {
  const std::vector<Token>& toks = lexed.tokens;
  const std::size_t n = toks.size();
  FileIndex out;
  out.file = rel_path;

  // Quoted #include directives: '#' 'include' "path".
  for (std::size_t i = 0; i + 2 < n; ++i) {
    if (is_punct(toks[i], "#") && is_ident(toks[i + 1], "include") &&
        toks[i + 2].kind == TokKind::String) {
      out.includes.push_back(toks[i + 2].text);
    }
  }

  const std::vector<char> lambda_brace = mark_lambda_braces(toks);

  std::vector<ScopeFrame> scopes;  ///< one frame per open '{'
  FunctionDef* fn = nullptr;       ///< non-null while inside a function body
  std::size_t fn_scope_depth = 0;  ///< scopes.size() at the body '{'
  std::string fn_class;            ///< enclosing class component, for lock ids

  std::vector<ActiveLock> locks;
  struct LambdaFrame {
    std::size_t entry_depth;
    std::vector<ActiveLock> saved;
  };
  std::vector<LambdaFrame> lambda_frames;

  auto held_ids = [&]() {
    std::vector<std::string> ids;
    ids.reserve(locks.size());
    for (const ActiveLock& l : locks) ids.push_back(l.id);
    return ids;
  };

  // Canonical mutex id for the token range [b, e) of a lock ctor argument:
  // a bare member gets the enclosing class as qualifier (every class here
  // names its mutex mu_, so "mu_" alone would alias unrelated locks); a
  // dotted/arrow path keeps its final member name.
  auto mutex_id = [&](std::size_t b, std::size_t e) -> std::string {
    std::string last;
    bool qualified_access = false;
    for (std::size_t k = b; k < e; ++k) {
      if (toks[k].kind == TokKind::Identifier) {
        if (toks[k].text == "this") continue;
        last = toks[k].text;
      } else if (is_punct(toks[k], ".") ||
                 (is_punct(toks[k], "->") && !(k > b && is_ident(toks[k - 1], "this")))) {
        qualified_access = true;
      }
    }
    if (last.empty()) return last;
    if (in_list(last, lock_tag_args())) return "";
    if (!qualified_access && !fn_class.empty()) return fn_class + "::" + last;
    return last;
  };

  // Classify what an upcoming '{' opens when we are at namespace/class
  // scope; returns the token index to resume from.
  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];

    if (is_punct(t, "{")) {
      if (fn) {
        if (lambda_brace[i]) {
          lambda_frames.push_back({scopes.size(), std::move(locks)});
          locks.clear();
        }
      }
      scopes.push_back({ScopeFrame::kBlock, ""});
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      if (fn) {
        while (!locks.empty() &&
               locks.back().depth > static_cast<int>(scopes.size()))
          locks.pop_back();
        if (!lambda_frames.empty() &&
            lambda_frames.back().entry_depth == scopes.size()) {
          locks = std::move(lambda_frames.back().saved);
          lambda_frames.pop_back();
        }
        if (scopes.size() < fn_scope_depth) {
          fn = nullptr;
          locks.clear();
          lambda_frames.clear();
        }
      }
      ++i;
      continue;
    }

    if (!fn) {
      // ---- namespace / class / function-definition recognition ----
      if (is_ident(t, "namespace")) {
        std::size_t j = i + 1;
        std::string name;
        while (j < n && (toks[j].kind == TokKind::Identifier ||
                         is_punct(toks[j], "::"))) {
          if (toks[j].kind == TokKind::Identifier) {
            if (!name.empty()) name += "::";
            name += toks[j].text;
          }
          ++j;
        }
        if (j < n && is_punct(toks[j], "{")) {
          scopes.push_back({ScopeFrame::kNamespace, name});
          i = j + 1;
          continue;
        }
        i = j;  // alias or ill-formed; fall through
        continue;
      }
      if ((is_ident(t, "class") || is_ident(t, "struct") ||
           is_ident(t, "union")) &&
          !(i >= 1 && is_ident(toks[i - 1], "enum"))) {
        std::size_t j = i + 1;
        std::string name;
        // first identifier after the keyword is the type name
        while (j < n && toks[j].kind == TokKind::Identifier) {
          name = toks[j].text;
          break;
        }
        // scan to the opening '{' or a ';' (forward declaration)
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";") &&
               !is_punct(toks[j], "}"))
          ++j;
        if (j < n && is_punct(toks[j], "{")) {
          scopes.push_back({ScopeFrame::kClass, name});
          i = j + 1;
          continue;
        }
        i = j;
        continue;
      }
      if (is_ident(t, "enum")) {
        std::size_t j = i + 1;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";"))
          ++j;
        if (j < n && is_punct(toks[j], "{")) j = skip_braces(toks, j);
        i = j;
        continue;
      }

      // Function definition: [~]ident(::ident)* "(" ... ")" [specs] "{"
      // or "... ) : ctor-init {".
      if (t.kind == TokKind::Identifier && i + 1 < n &&
          is_punct(toks[i + 1], "(") && !in_list(t.text, not_a_call())) {
        const std::size_t start = name_start(toks, i);
        const bool dtor = start >= 1 && is_punct(toks[start - 1], "~");
        const std::size_t close = skip_parens(toks, i + 1);
        // walk over trailing specifiers to find '{', ';' or ':'
        std::size_t j = close;
        std::size_t body = 0;
        std::size_t guard = 0;
        while (j < n && guard++ < 64) {
          const Token& s = toks[j];
          if (is_punct(s, "{")) {
            body = j;
            break;
          }
          if (is_punct(s, ";") || is_punct(s, "}") || is_punct(s, "=")) break;
          if (is_punct(s, ":")) {
            // ctor init list: body '{' follows ')' or '}' ; an initializer
            // '{' follows an identifier or '>'.
            std::size_t k = j + 1;
            std::size_t g2 = 0;
            while (k < n && g2++ < 512) {
              if (is_punct(toks[k], "(")) {
                k = skip_parens(toks, k);
                continue;
              }
              if (is_punct(toks[k], "{")) {
                const Token& prev = toks[k - 1];
                if (is_punct(prev, ")") || is_punct(prev, "}")) {
                  body = k;
                  break;
                }
                k = skip_braces(toks, k);
                continue;
              }
              if (is_punct(toks[k], ";")) break;
              ++k;
            }
            break;
          }
          if (s.kind == TokKind::Identifier || is_punct(s, "::") ||
              is_punct(s, "<") || is_punct(s, ">") || is_punct(s, "&") ||
              is_punct(s, "*") || is_punct(s, "->") || is_punct(s, ",") ||
              is_punct(s, "[") || is_punct(s, "]")) {
            ++j;
            continue;
          }
          if (is_punct(s, "(")) {
            j = skip_parens(toks, j);  // noexcept(...), attributes
            continue;
          }
          break;
        }
        if (body != 0) {
          std::string written = joined_name(toks, start, i);
          if (dtor) written = "~" + written;
          std::string qual;
          for (const ScopeFrame& sf : scopes) {
            if (sf.kind == ScopeFrame::kBlock || sf.name.empty()) continue;
            if (!qual.empty()) qual += "::";
            qual += sf.name;
          }
          FunctionDef def;
          def.qualified_name = qual.empty() ? written : qual + "::" + written;
          def.line = t.line;
          out.functions.push_back(std::move(def));
          fn = &out.functions.back();
          // enclosing class component: explicit qualifier on the written
          // name wins, else the innermost class scope.
          fn_class.clear();
          const auto last_sep = written.rfind("::");
          if (last_sep != std::string::npos) {
            const auto prev_sep = written.rfind("::", last_sep - 1);
            fn_class = written.substr(
                prev_sep == std::string::npos ? 0 : prev_sep + 2,
                last_sep - (prev_sep == std::string::npos ? 0 : prev_sep + 2));
          } else {
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
              if (it->kind == ScopeFrame::kClass) {
                fn_class = it->name;
                break;
              }
            }
          }
          locks.clear();
          lambda_frames.clear();
          scopes.push_back({ScopeFrame::kBlock, ""});
          fn_scope_depth = scopes.size();
          i = body + 1;
          continue;
        }
        i = close;
        continue;
      }
      ++i;
      continue;
    }

    // ---- inside a function body ----
    if (t.kind != TokKind::Identifier) {
      ++i;
      continue;
    }

    // Lock declarations: lock_guard/unique_lock/scoped_lock [<...>] var (args)
    if (in_list(t.text, lock_decl_types())) {
      std::size_t j = i + 1;
      if (j < n && is_punct(toks[j], "<")) j = skip_template_args(toks, j);
      if (j < n && toks[j].kind == TokKind::Identifier && j + 1 < n &&
          (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
        const std::string var = toks[j].text;
        const int line = toks[j].line;
        // split ctor args on top-level commas
        std::size_t b = j + 2;
        const std::size_t close =
            is_punct(toks[j + 1], "(") ? skip_parens(toks, j + 1) - 1
                                       : skip_braces(toks, j + 1) - 1;
        int depth = 0;
        std::size_t arg_begin = b;
        for (std::size_t k = b; k <= close && k < n; ++k) {
          if (is_punct(toks[k], "(") || is_punct(toks[k], "<")) ++depth;
          else if (is_punct(toks[k], ")") || is_punct(toks[k], ">")) --depth;
          if ((k == close) || (depth == 0 && is_punct(toks[k], ","))) {
            const std::size_t arg_end = (k == close) ? k : k;
            const std::string id = mutex_id(arg_begin, arg_end);
            if (!id.empty()) {
              fn->locks.push_back({id, line, held_ids()});
              locks.push_back(
                  {static_cast<int>(scopes.size()), id, var});
            }
            arg_begin = k + 1;
          }
        }
        i = close + 1;
        continue;
      }
      ++i;
      continue;
    }

    const bool member_recv = i >= 1 && (is_punct(toks[i - 1], ".") ||
                                        is_punct(toks[i - 1], "->"));

    // Explicit mutex lock/unlock.
    if (t.text == "lock" && member_recv && i + 1 < n &&
        is_punct(toks[i + 1], "(")) {
      const std::size_t recv = name_start(toks, i >= 2 ? i - 2 : 0);
      const std::string id = mutex_id(recv, i - 1);
      if (!id.empty()) {
        fn->locks.push_back({id, t.line, held_ids()});
        locks.push_back({static_cast<int>(scopes.size()), id,
                         i >= 2 && toks[i - 2].kind == TokKind::Identifier
                             ? toks[i - 2].text
                             : ""});
      }
      i += 2;
      continue;
    }
    if (t.text == "unlock" && member_recv) {
      const std::string var =
          i >= 2 && toks[i - 2].kind == TokKind::Identifier ? toks[i - 2].text
                                                            : "";
      auto it = std::find_if(locks.rbegin(), locks.rend(),
                             [&](const ActiveLock& l) { return l.var == var; });
      if (it != locks.rend()) locks.erase(std::next(it).base());
      else if (!locks.empty()) locks.pop_back();
      ++i;
      continue;
    }

    // Banned-token hits (taint sources for the transitive rules).
    if (in_list(t.text, entropy_always())) {
      fn->entropy_hits.push_back({t.text, t.line});
    } else if (in_list(t.text, entropy_calls()) && i + 1 < n &&
               is_punct(toks[i + 1], "(") && !member_recv) {
      fn->entropy_hits.push_back({t.text, t.line});
    }
    if (t.text == "new") {
      fn->heap_hits.push_back({"new", t.line});
      ++i;
      continue;
    }
    if (in_list(t.text, alloc_calls()) && i + 1 < n &&
        (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "<")) &&
        !member_recv) {
      fn->heap_hits.push_back({t.text, t.line});
    }
    if (member_recv && i + 1 < n && is_punct(toks[i + 1], "(") &&
        in_list(t.text, growth_calls())) {
      fn->heap_hits.push_back({t.text, t.line});
    }
    if (t.text == "vector" && i + 1 < n && is_punct(toks[i + 1], "<")) {
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after != i + 1 && after < n &&
          toks[after].kind == TokKind::Identifier && after + 1 < n &&
          (is_punct(toks[after + 1], ";") || is_punct(toks[after + 1], "=") ||
           is_punct(toks[after + 1], "(") || is_punct(toks[after + 1], "{"))) {
        fn->heap_hits.push_back({"vector-local", t.line});
      }
    }

    // Call sites: ident "(" or ident "<tmpl>" "(".
    std::size_t args = 0;
    if (i + 1 < n && is_punct(toks[i + 1], "(")) {
      args = i + 1;
    } else if (i + 1 < n && is_punct(toks[i + 1], "<")) {
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after != i + 1 && after < n && is_punct(toks[after], "(")) args = after;
    }
    if (args != 0 && !in_list(t.text, not_a_call()) && t.text != "operator") {
      const std::size_t start = member_recv ? i : name_start(toks, i);
      bool is_call = true;
      if (start >= 1) {
        const Token& prev =
            toks[start - 1].kind == TokKind::Punct &&
                    toks[start - 1].text == "::" && start >= 2
                ? toks[start - 2]  // leading "::" — treat its prev
                : toks[start - 1];
        if (prev.kind == TokKind::Identifier &&
            !in_list(prev.text, call_context()) && !member_recv) {
          is_call = false;  // "Type name(args)" declaration shape
        }
        if (prev.kind == TokKind::Punct &&
            (prev.text == ">" || prev.text == "~") && !member_recv) {
          is_call = false;  // "vector<int> name(...)" / destructor header
        }
      }
      if (is_call) {
        fn->calls.push_back(
            {member_recv ? t.text : joined_name(toks, start, i), t.line,
             held_ids()});
      }
    }
    ++i;
  }

  return out;
}

}  // namespace ckptfi::lint::sema
