#include "sema/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scopes.hpp"
#include "util/crc32.hpp"
#include "util/json.hpp"

namespace ckptfi::lint::sema {

namespace fs = std::filesystem;

namespace {

constexpr int kCacheFormatVersion = 1;

std::uint32_t crc_str(std::uint32_t crc, const std::string& s) {
  return ckptfi::crc32(s.data(), s.size(), crc);
}

Json hits_to_json(const std::vector<DirectHit>& hits) {
  Json arr = Json::array();
  for (const DirectHit& h : hits) {
    Json j = Json::object();
    j["w"] = h.what;
    j["l"] = h.line;
    arr.push_back(std::move(j));
  }
  return arr;
}

std::vector<DirectHit> hits_from_json(const Json& arr) {
  std::vector<DirectHit> out;
  for (const Json& j : arr.items()) {
    out.push_back({j.at("w").as_string(), static_cast<int>(j.at("l").as_int())});
  }
  return out;
}

Json strings_to_json(const std::vector<std::string>& v) {
  Json arr = Json::array();
  for (const std::string& s : v) arr.push_back(s);
  return arr;
}

std::vector<std::string> strings_from_json(const Json& arr) {
  std::vector<std::string> out;
  for (const Json& j : arr.items()) out.push_back(j.as_string());
  return out;
}

std::string entry_path(const std::string& dir, const std::string& rel_path) {
  char name[16];
  std::snprintf(name, sizeof(name), "%08x",
                ckptfi::crc32(rel_path.data(), rel_path.size()));
  return dir + "/" + name + ".json";
}

}  // namespace

std::uint32_t analysis_fingerprint() {
  std::uint32_t crc = static_cast<std::uint32_t>(kCacheFormatVersion);
  for (const RuleInfo& r : rules()) {
    crc = crc_str(crc, r.id);
    crc = crc_str(crc, r.summary);
    crc = crc_str(crc, r.hint);
  }
  crc = crc_str(crc, scopes_dump());
  return crc;
}

std::optional<FileArtifact> cache_load(const std::string& dir,
                                       const std::string& rel_path,
                                       std::uint32_t content_crc) {
  std::ifstream in(entry_path(dir, rel_path), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const Json doc = Json::parse(buf.str());
    if (doc.at("path").as_string() != rel_path) return std::nullopt;
    if (static_cast<std::uint32_t>(doc.at("crc").as_int()) != content_crc)
      return std::nullopt;
    if (static_cast<std::uint32_t>(doc.at("fp").as_int()) !=
        analysis_fingerprint())
      return std::nullopt;

    FileArtifact art;
    for (const Json& j : doc.at("findings").items()) {
      art.findings.push_back({j.at("rule").as_string(),
                              static_cast<int>(j.at("line").as_int()),
                              j.at("msg").as_string()});
    }
    for (const Json& j : doc.at("suppressions").items()) {
      Suppression s;
      s.line = static_cast<int>(j.at("line").as_int());
      s.reason = j.at("reason").as_string();
      s.rules = strings_from_json(j.at("rules"));
      art.suppressions.push_back(std::move(s));
    }
    art.index.file = rel_path;
    art.index.includes = strings_from_json(doc.at("includes"));
    for (const Json& j : doc.at("functions").items()) {
      FunctionDef def;
      def.qualified_name = j.at("name").as_string();
      def.line = static_cast<int>(j.at("line").as_int());
      for (const Json& c : j.at("calls").items()) {
        def.calls.push_back({c.at("n").as_string(),
                             static_cast<int>(c.at("l").as_int()),
                             strings_from_json(c.at("held"))});
      }
      for (const Json& l : j.at("locks").items()) {
        def.locks.push_back({l.at("m").as_string(),
                             static_cast<int>(l.at("l").as_int()),
                             strings_from_json(l.at("held"))});
      }
      def.entropy_hits = hits_from_json(j.at("entropy"));
      def.heap_hits = hits_from_json(j.at("heap"));
      art.index.functions.push_back(std::move(def));
    }
    return art;
  } catch (...) {
    return std::nullopt;  // malformed entry = miss
  }
}

void cache_store(const std::string& dir, const std::string& rel_path,
                 std::uint32_t content_crc, const FileArtifact& art) {
  Json doc = Json::object();
  doc["path"] = rel_path;
  doc["crc"] = static_cast<std::int64_t>(content_crc);
  doc["fp"] = static_cast<std::int64_t>(analysis_fingerprint());

  Json findings = Json::array();
  for (const RawFinding& f : art.findings) {
    Json j = Json::object();
    j["rule"] = f.rule;
    j["line"] = f.line;
    j["msg"] = f.message;
    findings.push_back(std::move(j));
  }
  doc["findings"] = std::move(findings);

  Json sups = Json::array();
  for (const Suppression& s : art.suppressions) {
    Json j = Json::object();
    j["line"] = s.line;
    j["reason"] = s.reason;
    j["rules"] = strings_to_json(s.rules);
    sups.push_back(std::move(j));
  }
  doc["suppressions"] = std::move(sups);

  doc["includes"] = strings_to_json(art.index.includes);
  Json fns = Json::array();
  for (const FunctionDef& d : art.index.functions) {
    Json j = Json::object();
    j["name"] = d.qualified_name;
    j["line"] = d.line;
    Json calls = Json::array();
    for (const CallSite& c : d.calls) {
      Json cj = Json::object();
      cj["n"] = c.name;
      cj["l"] = c.line;
      cj["held"] = strings_to_json(c.held_locks);
      calls.push_back(std::move(cj));
    }
    j["calls"] = std::move(calls);
    Json locks = Json::array();
    for (const LockSite& l : d.locks) {
      Json lj = Json::object();
      lj["m"] = l.mutex_id;
      lj["l"] = l.line;
      lj["held"] = strings_to_json(l.held_before);
      locks.push_back(std::move(lj));
    }
    j["locks"] = std::move(locks);
    j["entropy"] = hits_to_json(d.entropy_hits);
    j["heap"] = hits_to_json(d.heap_hits);
    fns.push_back(std::move(j));
  }
  doc["functions"] = std::move(fns);

  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string final_path = entry_path(dir, rel_path);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << doc.dump() << "\n";
    if (!out) {
      fs::remove(tmp_path, ec);
      return;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

}  // namespace ckptfi::lint::sema
