// The whole-program view tier B reasons over: every FileIndex flattened into
// a function table, a name-resolution index, and the include closure that
// scopes unqualified-call resolution to declarations a file can actually
// see. Resolution is deliberately conservative:
//
//   1. a call qualified as written ("util::helper") matches definitions
//      whose qualified name ends with those components;
//   2. an unqualified call in a member function prefers siblings in the
//      same enclosing scope;
//   3. otherwise candidates must be include-visible: defined in the calling
//      file, in its transitive quoted-include closure, or in the .cpp
//      paired (by stem) with a visible header;
//   4. a lone global definition of the name is accepted as a last resort —
//      a unique match cannot be the wrong one;
//   5. anything still ambiguous resolves to nothing. A missed edge is a
//      false negative for one chain; a junk edge on a common name ("run",
//      "size") would drown the report in false chains.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sema/index.hpp"

namespace ckptfi::lint::sema {

struct ProgramFn {
  const FileIndex* file = nullptr;
  const FunctionDef* def = nullptr;
  std::string scope;  ///< qualified_name minus its last component
  std::string last;   ///< last component of qualified_name
};

class Program {
 public:
  explicit Program(const std::vector<FileIndex>& files);

  const std::vector<ProgramFn>& fns() const { return fns_; }

  /// Resolve a call site to candidate callee fn indexes (sorted, possibly
  /// empty). `caller` is an index into fns().
  std::vector<int> resolve(int caller, const CallSite& call) const;

  /// Reverse adjacency: for each fn, the (caller fn, call-site) pairs whose
  /// resolution includes it. Built lazily on first use.
  const std::vector<std::vector<std::pair<int, const CallSite*>>>& callers() const;

 private:
  bool visible_from(const FileIndex* from, const FileIndex* def_file) const;

  std::vector<ProgramFn> fns_;
  std::map<std::string, std::vector<int>> by_last_;
  std::map<std::string, int> file_idx_;
  std::vector<std::vector<int>> stem_peers_;  ///< files sharing each file's stem
  std::vector<std::vector<char>> closure_;    ///< [file][file] reachability
  mutable std::vector<std::vector<std::pair<int, const CallSite*>>> callers_;
  mutable bool callers_built_ = false;
};

}  // namespace ckptfi::lint::sema
