// Tier B: the interprocedural rules. Tier A sees one file at a time, so a
// helper in an exempt module that calls std::random_device is invisible the
// moment a kernel calls the helper — exactly the indirect-nondeterminism
// shape the compute-stage injection backend will multiply. These rules walk
// the project call graph instead:
//
//   det-transitive-entropy  — a deterministic-module function reaches a
//                             banned entropy/time source through helpers in
//                             exempt modules (tier A already covers sources
//                             inside deterministic modules themselves).
//   arena-transitive-heap   — a kernel hot-path function reaches heap
//                             allocation through helpers outside the
//                             hot-path files (tier A covers literal new/
//                             malloc in those files).
//   conc-lock-order         — two call chains acquire the same pair of
//                             mutexes in opposite orders (ABBA deadlock).
//
// Findings are reported at the boundary — the call site in the policed file
// whose callee is transitively dirty — so a deep chain produces one finding
// where the fix (or the reasoned allow) belongs, and the full chain rides
// along as SARIF codeFlows evidence.
#include <algorithm>
#include <map>
#include <set>

#include "analysis.hpp"
#include "scopes.hpp"
#include "sema/graph.hpp"

namespace ckptfi::lint {

namespace {

using sema::CallSite;
using sema::DirectHit;
using sema::LockSite;
using sema::Program;
using sema::ProgramFn;

constexpr char kTransEntropy[] = "det-transitive-entropy";
constexpr char kTransHeap[] = "arena-transitive-heap";
constexpr char kLockOrder[] = "conc-lock-order";

/// Where a function's taint comes from: a banned token in its own body, or
/// a call edge into an already-tainted function. Witness entries are written
/// first-wins during a BFS from the sources, so following them always
/// terminates at a DirectHit.
struct Witness {
  const DirectHit* hit = nullptr;   ///< set for source functions
  const CallSite* via = nullptr;    ///< else: the edge toward the sink
  int next = -1;                    ///< callee fn index for `via`
};

std::string last_component(const std::string& qualified) {
  const auto sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

/// Reverse-BFS taint from `sources` through functions satisfying
/// `in_region`, recording a witness chain per tainted function.
std::map<int, Witness> propagate(const Program& prog,
                                 const std::vector<int>& sources,
                                 const std::vector<char>& in_region,
                                 const std::vector<const DirectHit*>& hit_of) {
  std::map<int, Witness> taint;
  std::vector<int> queue;
  for (int s : sources) {
    taint[s] = {hit_of[s], nullptr, -1};
    queue.push_back(s);
  }
  const auto& callers = prog.callers();
  for (std::size_t q = 0; q < queue.size(); ++q) {
    const int g = queue[q];
    for (const auto& [f, call] : callers[g]) {
      if (!in_region[f] || taint.count(f)) continue;
      taint[f] = {nullptr, call, g};
      queue.push_back(f);
    }
  }
  return taint;
}

/// Unfold a witness chain from `start` down to its banned token.
std::vector<ChainStep> unfold(const Program& prog,
                              const std::map<int, Witness>& taint, int start,
                              const char* verb) {
  std::vector<ChainStep> steps;
  int cur = start;
  for (int guard = 0; guard < 64; ++guard) {
    const auto it = taint.find(cur);
    if (it == taint.end()) break;
    const ProgramFn& fn = prog.fns()[cur];
    if (it->second.hit) {
      steps.push_back({fn.file->file, it->second.hit->line,
                       "'" + fn.def->qualified_name + "' " + verb + " '" +
                           it->second.hit->what + "'"});
      break;
    }
    const ProgramFn& next = prog.fns()[it->second.next];
    steps.push_back({fn.file->file, it->second.via->line,
                     "'" + fn.def->qualified_name + "' calls '" +
                         last_component(next.def->qualified_name) + "'"});
    cur = it->second.next;
  }
  return steps;
}

/// Shared body of the two transitive-taint rules.
void taint_rule(const Program& prog, const char* rule, const char* sink_kind,
                const char* verb, const char* fix,
                bool (*entry_file)(std::string_view),
                bool (*barrier)(std::string_view),
                std::vector<DirectHit> sema::FunctionDef::*hits,
                std::vector<Finding>& out) {
  const auto& fns = prog.fns();
  const std::size_t n = fns.size();

  std::vector<char> in_region(n, 0);
  std::vector<const DirectHit*> hit_of(n, nullptr);
  std::vector<int> sources;
  for (std::size_t i = 0; i < n; ++i) {
    const ProgramFn& f = fns[i];
    const bool policed = entry_file(f.file->file);
    if (policed || barrier(f.def->qualified_name)) continue;
    in_region[i] = 1;
    const auto& h = f.def->*hits;
    if (!h.empty()) {
      hit_of[i] = &h.front();
      sources.push_back(static_cast<int>(i));
    }
  }
  if (sources.empty()) return;
  const std::map<int, Witness> taint = propagate(prog, sources, in_region, hit_of);

  // One finding per call site: a name resolving to several tainted
  // overloads is one problem at one line, not several.
  std::set<std::pair<int, int>> seen;  // (entry fn, call line)
  for (std::size_t i = 0; i < n; ++i) {
    const ProgramFn& f = fns[i];
    if (!entry_file(f.file->file)) continue;
    for (const CallSite& c : f.def->calls) {
      for (int callee : prog.resolve(static_cast<int>(i), c)) {
        if (!taint.count(callee)) continue;
        if (!seen.insert({static_cast<int>(i), c.line}).second) continue;
        std::vector<ChainStep> chain;
        chain.push_back({f.file->file, c.line,
                         "'" + f.def->qualified_name + "' calls '" +
                             last_component(fns[callee].def->qualified_name) +
                             "'"});
        std::vector<ChainStep> rest = unfold(prog, taint, callee, verb);
        chain.insert(chain.end(), rest.begin(), rest.end());
        const ChainStep& sink = chain.back();
        Finding fd;
        fd.rule = rule;
        fd.file = f.file->file;
        fd.line = c.line;
        fd.message = "'" + f.def->qualified_name + "' transitively reaches " +
                     sink_kind + " (" + sink.file + ":" +
                     std::to_string(sink.line) + ") via '" +
                     last_component(fns[callee].def->qualified_name) + "'; " +
                     fix;
        fd.chain = std::move(chain);
        out.push_back(std::move(fd));
      }
    }
  }
}

bool entropy_entry(std::string_view path) {
  return in_deterministic_module(path);
}
bool heap_entry(std::string_view path) { return is_kernel_hot_path(path); }

// ------------------------------------------------------------ lock order --

struct AcqWitness {
  const LockSite* site = nullptr;  ///< acquired locally here
  const CallSite* via = nullptr;   ///< else reached through this call
  int next = -1;
};

struct PairEvidence {
  std::vector<ChainStep> chain;
  std::string file;
  int line = 1;
};

void lock_order_rule(const Program& prog, std::vector<Finding>& out) {
  const auto& fns = prog.fns();
  const std::size_t n = fns.size();

  // Transitive lock-acquisition summaries, to fixpoint. Witnesses are
  // first-write-wins, so each references an entry that existed strictly
  // earlier — following them terminates.
  std::vector<std::map<std::string, AcqWitness>> acq(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const LockSite& s : fns[i].def->locks) {
      acq[i].emplace(s.mutex_id, AcqWitness{&s, nullptr, -1});
    }
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (const CallSite& c : fns[i].def->calls) {
        for (int g : prog.resolve(static_cast<int>(i), c)) {
          for (const auto& entry : acq[g]) {
            if (acq[i].emplace(entry.first, AcqWitness{nullptr, &c, g}).second)
              changed = true;
          }
        }
      }
    }
  }

  auto unfold_acq = [&](int fn, const std::string& m) {
    std::vector<ChainStep> steps;
    int cur = fn;
    for (int guard = 0; guard < 64; ++guard) {
      const auto it = acq[cur].find(m);
      if (it == acq[cur].end()) break;
      const ProgramFn& f = fns[cur];
      if (it->second.site) {
        steps.push_back({f.file->file, it->second.site->line,
                         "'" + f.def->qualified_name + "' acquires '" + m +
                             "'"});
        break;
      }
      const ProgramFn& next = fns[it->second.next];
      steps.push_back({f.file->file, it->second.via->line,
                       "'" + f.def->qualified_name + "' calls '" +
                           last_component(next.def->qualified_name) + "'"});
      cur = it->second.next;
    }
    return steps;
  };

  // Ordered pairs "held `a`, then acquired `b`", each with its best (first
  // found, functions in deterministic order) evidence chain.
  std::map<std::pair<std::string, std::string>, PairEvidence> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    const ProgramFn& f = fns[i];
    for (const LockSite& s : f.def->locks) {
      for (const std::string& h : s.held_before) {
        if (h == s.mutex_id) continue;
        const auto key = std::make_pair(h, s.mutex_id);
        if (pairs.count(key)) continue;
        PairEvidence ev;
        ev.file = f.file->file;
        ev.line = s.line;
        ev.chain.push_back({f.file->file, s.line,
                            "'" + f.def->qualified_name + "' acquires '" +
                                s.mutex_id + "' while holding '" + h + "'"});
        pairs.emplace(key, std::move(ev));
      }
    }
    for (const CallSite& c : f.def->calls) {
      if (c.held_locks.empty()) continue;
      for (int g : prog.resolve(static_cast<int>(i), c)) {
        for (const auto& entry : acq[g]) {
          const std::string& m = entry.first;
          for (const std::string& h : c.held_locks) {
            if (h == m) continue;
            const auto key = std::make_pair(h, m);
            if (pairs.count(key)) continue;
            PairEvidence ev;
            ev.file = f.file->file;
            ev.line = c.line;
            ev.chain.push_back(
                {f.file->file, c.line,
                 "'" + f.def->qualified_name + "' calls '" +
                     last_component(fns[g].def->qualified_name) +
                     "' while holding '" + h + "'"});
            std::vector<ChainStep> rest = unfold_acq(g, m);
            ev.chain.insert(ev.chain.end(), rest.begin(), rest.end());
            pairs.emplace(key, std::move(ev));
          }
        }
      }
    }
  }

  for (const auto& [key, ev] : pairs) {
    const auto& [a, b] = key;
    if (a >= b) continue;  // report each unordered pair once, from (a,b)
    const auto inverse = pairs.find(std::make_pair(b, a));
    if (inverse == pairs.end()) continue;
    Finding fd;
    fd.rule = kLockOrder;
    fd.file = ev.file;
    fd.line = ev.line;
    fd.message = "lock-order inversion: this chain acquires '" + a +
                 "' then '" + b + "', but " + inverse->second.file + ":" +
                 std::to_string(inverse->second.line) + " acquires '" + b +
                 "' then '" + a +
                 "'; concurrent callers can deadlock (ABBA)";
    fd.chain = ev.chain;
    fd.counter_chain = inverse->second.chain;
    out.push_back(std::move(fd));
  }
}

}  // namespace

std::vector<Finding> interprocedural_rules(
    const std::vector<FileArtifact>& artifacts) {
  std::vector<sema::FileIndex> indexes;
  indexes.reserve(artifacts.size());
  for (const FileArtifact& a : artifacts) indexes.push_back(a.index);
  const Program prog(indexes);

  std::vector<Finding> out;
  taint_rule(prog, kTransEntropy, "an entropy/time source",
             "uses", "trial results would stop being a pure function of "
             "(--seed, trial index)",
             &entropy_entry, &is_entropy_barrier,
             &sema::FunctionDef::entropy_hits, out);
  taint_rule(prog, kTransHeap, "heap allocation",
             "uses", "kernel scratch must come from the Workspace arena "
             "even through helpers",
             &heap_entry, &is_heap_barrier, &sema::FunctionDef::heap_hits,
             out);
  lock_order_rule(prog, out);
  return out;
}

}  // namespace ckptfi::lint
