// Tier B's per-file declaration index: the semantic facts the
// interprocedural rules need, extracted from the tier A token stream in one
// pass. No AST and no libclang — the indexer recognises just enough C++
// declaration shape (namespace/class scopes, out-of-line qualified names,
// ctor init lists, lambda bodies) to attribute every call site, lock
// acquisition, and banned-token hit to the function whose body contains it.
//
// A FileIndex is a pure function of (rel_path, file content), which is what
// makes the on-disk cache (sema/cache.hpp) sound: content crc unchanged ⇒
// index unchanged.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace ckptfi::lint::sema {

/// A call site inside a function body, with the lock context it runs under.
struct CallSite {
  std::string name;  ///< as written: "helper", "util::helper", "obj.method"→"method"
  int line = 1;
  std::vector<std::string> held_locks;  ///< canonical mutex ids live at the call
};

/// One lock acquisition (lock_guard/unique_lock/scoped_lock ctor or .lock()).
struct LockSite {
  std::string mutex_id;  ///< canonical id, e.g. "ThreadPool::mu_"
  int line = 1;
  std::vector<std::string> held_before;  ///< ids already held when acquiring
};

/// A banned-token occurrence inside a function body — the taint sources the
/// transitive rules trace back to.
struct DirectHit {
  std::string what;  ///< e.g. "random_device", "push_back"
  int line = 1;
};

struct FunctionDef {
  std::string qualified_name;  ///< scope-stack + written name, "::"-joined
  int line = 1;                ///< line of the definition header
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<DirectHit> entropy_hits;  ///< det-rng-entropy token shapes
  std::vector<DirectHit> heap_hits;     ///< arena-kernel-heap token shapes
};

struct FileIndex {
  std::string file;                   ///< scan-root-relative, '/'-separated
  std::vector<std::string> includes;  ///< quoted #include texts, as written
  std::vector<FunctionDef> functions;
};

FileIndex build_index(const std::string& rel_path, const LexedFile& lexed);

}  // namespace ckptfi::lint::sema
