// On-disk per-file artifact cache. A FileArtifact is a pure function of
// (rel_path, content, rule registry, scope tables), so an entry is keyed by
// the content's crc32 plus a fingerprint of the registry/scopes — touching
// one source file re-analyzes only that file, and editing a rule or a scope
// table invalidates every entry without anyone remembering to clean.
//
// Entries are single JSON files written via temp + rename, so concurrent
// lint runs (ctest + a pre-commit hook, say) can share a directory without
// torn reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis.hpp"

namespace ckptfi::lint::sema {

/// Fingerprint of everything that affects analysis besides file content:
/// the rule registry (ids, summaries, hints), the scope tables, and a
/// format version bumped on cache-layout changes.
std::uint32_t analysis_fingerprint();

/// Load the cached artifact for `rel_path` if its key matches; nullopt on
/// miss, mismatch, or malformed entry (malformed entries are treated as
/// misses, never errors — the cache is an accelerator, not a source of
/// truth).
std::optional<FileArtifact> cache_load(const std::string& dir,
                                       const std::string& rel_path,
                                       std::uint32_t content_crc);

/// Store `art` under the cache key; best-effort (IO failure is ignored).
void cache_store(const std::string& dir, const std::string& rel_path,
                 std::uint32_t content_crc, const FileArtifact& art);

}  // namespace ckptfi::lint::sema
