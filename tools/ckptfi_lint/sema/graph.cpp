#include "sema/graph.hpp"

#include <algorithm>
#include <set>

namespace ckptfi::lint::sema {

namespace {

std::vector<std::string> split_quals(const std::string& name) {
  std::vector<std::string> comps;
  std::size_t pos = 0;
  while (true) {
    const auto sep = name.find("::", pos);
    if (sep == std::string::npos) {
      comps.push_back(name.substr(pos));
      break;
    }
    comps.push_back(name.substr(pos, sep - pos));
    pos = sep + 2;
  }
  return comps;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string stem_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

/// Collapse "a/b/../c" and "./" segments (include texts like
/// "../common/x.hpp" resolved against a subdirectory).
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const auto slash = path.find('/', pos);
    const std::string seg =
        path.substr(pos, slash == std::string::npos ? std::string::npos
                                                    : slash - pos);
    if (seg == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!seg.empty() && seg != ".") {
      parts.push_back(seg);
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

}  // namespace

Program::Program(const std::vector<FileIndex>& files) {
  for (std::size_t i = 0; i < files.size(); ++i) {
    file_idx_[files[i].file] = static_cast<int>(i);
  }
  // Files sharing a stem (foo.hpp / foo.cpp) are pairs for visibility.
  std::map<std::string, std::vector<int>> by_stem;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_stem[stem_of(files[i].file)].push_back(static_cast<int>(i));
  }
  stem_peers_.assign(files.size(), {});
  for (const auto& [stem, idxs] : by_stem) {
    for (int i : idxs) stem_peers_[i] = idxs;
  }

  for (const FileIndex& f : files) {
    for (const FunctionDef& d : f.functions) {
      ProgramFn pf;
      pf.file = &f;
      pf.def = &d;
      const auto sep = d.qualified_name.rfind("::");
      if (sep == std::string::npos) {
        pf.last = d.qualified_name;
      } else {
        pf.scope = d.qualified_name.substr(0, sep);
        pf.last = d.qualified_name.substr(sep + 2);
      }
      by_last_[pf.last].push_back(static_cast<int>(fns_.size()));
      fns_.push_back(std::move(pf));
    }
  }

  // Direct include edges, resolved against the scanned file set: try the
  // includer's directory, then the repo's two include roots ("src/"-rooted
  // project headers, and root-relative paths like "bench/common.hpp").
  const std::size_t nf = files.size();
  std::vector<std::vector<int>> edges(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    const std::string dir = dir_of(files[i].file);
    for (const std::string& inc : files[i].includes) {
      for (const std::string& cand :
           {normalize(dir.empty() ? inc : dir + "/" + inc),
            normalize("src/" + inc), normalize(inc)}) {
        const auto it = file_idx_.find(cand);
        if (it != file_idx_.end()) {
          edges[i].push_back(it->second);
          break;
        }
      }
    }
  }
  // Transitive closure by BFS per file (the tree is a few hundred files).
  closure_.assign(nf, std::vector<char>(nf, 0));
  for (std::size_t i = 0; i < nf; ++i) {
    std::vector<int> queue = {static_cast<int>(i)};
    closure_[i][i] = 1;
    while (!queue.empty()) {
      const int cur = queue.back();
      queue.pop_back();
      for (int next : edges[cur]) {
        if (!closure_[i][next]) {
          closure_[i][next] = 1;
          queue.push_back(next);
        }
      }
    }
  }
}

bool Program::visible_from(const FileIndex* from, const FileIndex* def_file) const {
  const int fi = file_idx_.at(from->file);
  const int di = file_idx_.at(def_file->file);
  if (closure_[fi][di]) return true;
  // A .cpp is visible wherever its paired header (same stem) is: the call
  // resolves through the header declaration, the body lives in the .cpp.
  for (int peer : stem_peers_[di]) {
    if (closure_[fi][peer]) return true;
  }
  return false;
}

std::vector<int> Program::resolve(int caller, const CallSite& call) const {
  const ProgramFn& from = fns_[caller];
  std::vector<std::string> comps = split_quals(call.name);
  if (!comps.empty() && comps.front().empty()) comps.erase(comps.begin());
  if (comps.empty()) return {};
  const auto it = by_last_.find(comps.back());
  if (it == by_last_.end()) return {};

  std::vector<int> cands;
  for (int id : it->second) {
    if (id == caller) continue;  // plain recursion adds nothing to a chain
    if (comps.size() > 1) {
      // suffix-match the written qualifiers against the definition's scope
      const std::vector<std::string> have = split_quals(fns_[id].def->qualified_name);
      if (have.size() < comps.size()) continue;
      bool match = true;
      for (std::size_t k = 0; k < comps.size(); ++k) {
        if (have[have.size() - comps.size() + k] != comps[k]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
    }
    cands.push_back(id);
  }
  if (cands.empty()) return {};

  if (comps.size() == 1 && !from.scope.empty()) {
    std::vector<int> same_scope;
    for (int id : cands) {
      if (fns_[id].scope == from.scope) same_scope.push_back(id);
    }
    if (!same_scope.empty()) return same_scope;
  }

  std::vector<int> visible;
  for (int id : cands) {
    if (visible_from(from.file, fns_[id].file)) visible.push_back(id);
  }
  if (!visible.empty()) return visible;
  if (cands.size() == 1) return cands;
  return {};
}

const std::vector<std::vector<std::pair<int, const CallSite*>>>&
Program::callers() const {
  if (!callers_built_) {
    callers_.assign(fns_.size(), {});
    for (std::size_t f = 0; f < fns_.size(); ++f) {
      for (const CallSite& c : fns_[f].def->calls) {
        for (int callee : resolve(static_cast<int>(f), c)) {
          callers_[callee].emplace_back(static_cast<int>(f), &c);
        }
      }
    }
    callers_built_ = true;
  }
  return callers_;
}

}  // namespace ckptfi::lint::sema
