// ckptfi-lint: determinism & concurrency static analysis for the ckptfi tree.
//
// The paper's methodology needs bitwise-deterministic baselines: a corrupted
// run is only meaningful against a reproducible error-free run. The source
// conventions that buy that determinism (per-trial splitmix64 seed streams,
// ascending-k reduction order, notify-outside-lock, arena-only kernel
// scratch) are enforced here as named rules — see docs/LINT.md for each
// rule's motivating incident.
//
// Findings carry a rule id, file:line and a fix hint; output is human text
// plus SARIF 2.1.0 JSON. `// ckptfi-lint: allow(<rule>) <reason>`
// suppressions are honored (and counted); a suppression without a written
// reason is itself a finding. Non-zero process exit on any unsuppressed
// finding makes the tool a CI gate.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ckptfi::lint {

struct RuleInfo {
  std::string id;
  std::string summary;  ///< one-line description (SARIF shortDescription)
  std::string hint;     ///< how to fix, appended to every finding
};

/// The registered rule set, in stable id order.
const std::vector<RuleInfo>& rules();

/// One hop of an interprocedural evidence chain: the call site, callee
/// definition, or banned token that carries a tier B finding.
struct ChainStep {
  std::string file;  ///< scan-root-relative
  int line = 1;
  std::string note;  ///< human text, e.g. "gemm_rows calls scratch_helper"
};

struct Finding {
  std::string rule;
  std::string file;  ///< scan-root-relative, '/'-separated
  int line = 1;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
  /// Tier B evidence: the call chain from the flagged function to the
  /// banned sink, emitted as SARIF codeFlows/relatedLocations. Empty for
  /// per-file tier A findings.
  std::vector<ChainStep> chain;
  /// Second thread flow for conc-lock-order: the inverse-order chain the
  /// primary chain deadlocks against.
  std::vector<ChainStep> counter_chain;
};

/// One allow() directive encountered while scanning, whether or not any
/// finding matched it — the report lists them all so reviewers see every
/// hole punched in the gate.
struct SuppressionRecord {
  std::string file;
  int line = 1;
  std::string rules;   ///< comma-joined rule ids from allow(...)
  std::string reason;
  bool used = false;   ///< matched at least one finding
};

struct Options {
  std::string root = ".";           ///< paths below resolve relative to this
  std::vector<std::string> paths;   ///< default: src bench examples tests tools
  /// Skip tests/lint/fixtures (intentional violations used by the rule
  /// self-tests). The fixture tests disable this and point root at the
  /// fixture trees instead.
  bool default_excludes = true;
  /// Per-file index cache directory (empty = disabled). Entries are keyed
  /// by content crc32 plus a fingerprint of the rule registry and scope
  /// tables, so editing a rule invalidates every entry automatically.
  std::string index_cache;
  /// When set, findings/suppressions are only *reported* for these
  /// root-relative files (`--since`/`--changed-only`). The whole tree is
  /// still indexed — interprocedural chains may pass through unchanged
  /// files — but the warm cache makes that cheap.
  bool only_report_listed = false;
  std::vector<std::string> only_report;
};

struct Report {
  std::vector<Finding> findings;              ///< sorted by (file,line,rule)
  std::vector<SuppressionRecord> suppressions;  ///< sorted by (file,line)
  std::size_t files_scanned = 0;
  std::size_t files_indexed = 0;     ///< analyzed fresh this run
  std::size_t index_cache_hits = 0;  ///< replayed from the on-disk cache

  std::size_t unsuppressed() const;
  std::size_t suppressed() const;
  Json sarif() const;
  std::string text() const;
};

/// Lint every C++ file under opt.paths (resolved against opt.root).
Report run(const Options& opt);

/// Lint a single file's contents. `rel_path` decides which rules apply
/// (deterministic module, kernel hot path, bench harness — see rules.cpp).
void check_file(const std::string& rel_path, std::string_view content,
                Report& report);

}  // namespace ckptfi::lint
