// The one rule-scope table. Which rules police which paths used to live in
// three prose locations (rules.cpp predicates, docs/LINT.md, main.cpp's
// header comment) and drifted apart was only a module-addition away. Now the
// path lists are data in this header, the tier A/B predicates in rules.cpp
// and sema/rules_b.cpp read them, `ckptfi_lint --list-scopes` dumps them,
// and tests/lint/test_lint.cpp asserts every entry is documented verbatim in
// docs/LINT.md — so adding a module without extending lint coverage (or the
// docs) fails a test instead of silently shrinking the gate.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ckptfi::lint {

/// Path prefixes whose files carry the determinism contract: trial rows must
/// be a pure function of (--seed, trial index). det-* rules apply here.
inline constexpr std::string_view kDeterministicModules[] = {
    "src/tensor/",         "src/nn/",   "src/core/",
    "src/hdf5/",           "src/solver/", "src/data/",
    "src/models/",         "src/net/",  "tools/ckptfi_fleetd/",
    "tools/ckptfi_worker/",
};

/// Deliberately outside the det-* scope, with the reason on record.
/// (Everything not listed in kDeterministicModules is exempt; these are the
/// two neighbourhoods people keep asking about.)
inline constexpr std::string_view kDeterministicExempt[] = {
    "src/util/",  // hosts the seeded RNG itself (splitmix64/xoshiro)
    "src/obs/",   // observation-only: wall clocks never feed row bytes
};

/// Kernel hot-path translation units: scratch must come from the Workspace
/// arena and reductions must keep the documented fixed lane fold.
/// arena-* and det-simd-lane-order rules apply here.
inline constexpr std::string_view kKernelHotPaths[] = {
    "src/tensor/ops.cpp",
    "src/tensor/ops_naive.cpp",
    "src/tensor/ops_simd.cpp",
    "src/tensor/kernels.cpp",
};

/// Qualified-name prefixes the det-transitive-entropy walk does not step
/// into: ckptfi::obs is observation-only by contract (its wall-clock reads
/// are diagnostics; nothing it computes feeds row bytes, the same reason
/// src/obs is tier-A exempt).
inline constexpr std::string_view kEntropyBarriers[] = {
    "ckptfi::obs::",
    "obs::",
};

/// Qualified-name prefixes the arena-transitive-heap walk does not step
/// into: Workspace IS the sanctioned allocator (high-water regrow is its
/// documented job), Tensor::resize on caller-owned outputs is the documented
/// kernel contract (docs/KERNELS.md), obs record paths carry their own
/// zero-steady-state-allocation contract (tests/obs), and parallel_for's
/// shared-state packaging is per-region control-plane allocation — the PR 3
/// pool design — not per-element kernel scratch. (Calls *inside* the loop
/// lambda are attributed to the enclosing kernel, so the barrier exempts
/// only the pool's own launch machinery.)
inline constexpr std::string_view kHeapBarriers[] = {
    "ckptfi::Workspace::",
    "Workspace::",
    "ckptfi::Tensor::resize",
    "Tensor::resize",
    "ckptfi::obs::",
    "obs::",
    "ckptfi::ThreadPool::parallel_for",
    "ThreadPool::parallel_for",
    "ckptfi::parallel_for",
};

bool in_deterministic_module(std::string_view path);
bool in_deterministic_exempt(std::string_view path);
bool is_kernel_hot_path(std::string_view path);
bool is_entropy_barrier(std::string_view qualified_name);
bool is_heap_barrier(std::string_view qualified_name);

/// The `--list-scopes` dump: one `<kind>: <entry>` line per table row, in
/// table order. test_lint.cpp asserts every entry string appears verbatim in
/// docs/LINT.md.
std::string scopes_dump();

}  // namespace ckptfi::lint
