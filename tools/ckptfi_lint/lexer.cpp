#include "lexer.hpp"

#include <cctype>

namespace ckptfi::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Parse `ckptfi-lint: allow(rule-a, rule-b) reason text` out of a comment
/// body. Comments without the marker are ignored, as is prose that merely
/// mentions the tool name ("ckptfi-lint: every rule ..."): a directive is
/// only recognised when `allow(` directly follows the marker. An allow with
/// an empty rule list or no reason yields a directive the engine reports as
/// malformed.
void parse_directive(std::string_view comment, int line,
                     std::vector<Suppression>& out) {
  const auto marker = comment.find("ckptfi-lint:");
  if (marker == std::string_view::npos) return;
  std::string_view rest = comment.substr(marker + 12);
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
    rest.remove_prefix(1);
  if (rest.rfind("allow(", 0) != 0) return;
  Suppression sup;
  sup.line = line;
  const auto allow = rest.find("allow(");
  {
    std::string_view inside = rest.substr(allow + 6);
    const auto close = inside.find(')');
    if (close != std::string_view::npos) {
      std::string_view list = inside.substr(0, close);
      while (!list.empty()) {
        const auto comma = list.find(',');
        std::string_view one = trim(list.substr(0, comma));
        if (!one.empty()) sup.rules.emplace_back(one);
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
      sup.reason = std::string(trim(inside.substr(close + 1)));
    }
  }
  out.push_back(std::move(sup));
}

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  auto advance_line = [&](char c) {
    if (c == '\n') ++line;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      parse_directive(src.substr(start, i - start), line, out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i + 2;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        advance_line(src[i]);
        ++i;
      }
      const std::size_t end = (i + 1 < n) ? i : n;
      parse_directive(src.substr(start, end - start), start_line,
                      out.suppressions);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Identifier / keyword — and the R"(...)"-style raw string glued to an
    // encoding prefix (R, u8R, uR, UR, LR).
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string_view word = src.substr(start, i - start);
      if (i < n && src[i] == '"' && !word.empty() && word.back() == 'R' &&
          word.size() <= 3) {
        // Raw string: R"delim( ... )delim".
        ++i;  // consume the quote
        std::size_t dstart = i;
        while (i < n && src[i] != '(') ++i;
        const std::string delim(src.substr(dstart, i - dstart));
        const std::string closer = ")" + delim + "\"";
        if (i < n) ++i;  // consume '('
        const std::size_t body = i;
        const auto close = src.find(closer, i);
        const std::size_t body_end = close == std::string_view::npos
                                         ? n
                                         : close;
        for (std::size_t k = body; k < body_end; ++k) advance_line(src[k]);
        out.tokens.push_back({TokKind::String,
                              std::string(src.substr(body, body_end - body)),
                              line});
        i = close == std::string_view::npos ? n : close + closer.size();
        continue;
      }
      out.tokens.push_back({TokKind::Identifier, std::string(word), line});
      continue;
    }
    // Number (handles digit separators and exponents; precision of the
    // grammar does not matter to any rule).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::Number, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      const std::size_t start = i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        advance_line(src[i]);
        ++i;
      }
      out.tokens.push_back(
          {TokKind::String, std::string(src.substr(start, i - start)), line});
      if (i < n) ++i;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      const std::size_t start = i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      out.tokens.push_back(
          {TokKind::CharLit, std::string(src.substr(start, i - start)), line});
      if (i < n) ++i;
      continue;
    }
    // Multi-char operators the rules need as single tokens.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::Punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::Punct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace ckptfi::lint
