// Lightweight C++ tokenizer for ckptfi-lint.
//
// The rule engine (rules.cpp) works on token streams, not ASTs: every
// invariant it enforces is visible at token level (banned identifiers,
// declaration shapes, scope nesting), which keeps the tool free of a
// libclang dependency and fast enough to gate every CI run. The lexer
// understands just enough C++ to never misread program text: line and block
// comments, string/char literals (including raw strings and digit
// separators), and multi-char operators the rules care about (`::`, `->`).
//
// Comments are not emitted as tokens; the only thing the engine wants from
// them is suppression directives (`// ckptfi-lint: allow(<rule>) <reason>`),
// which the lexer parses into LexedFile::suppressions as it goes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ckptfi::lint {

enum class TokKind {
  Identifier,  ///< identifiers and keywords (the lexer does not distinguish)
  Number,
  String,      ///< string literal, text without quotes/prefix
  CharLit,
  Punct,       ///< single-char punctuation, plus "::" and "->"
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;
};

/// One `ckptfi-lint: allow(...)` directive found in a comment. A directive
/// suppresses matching findings on its own line and on the line directly
/// below it (so it can ride at end-of-line or on the line above).
struct Suppression {
  std::vector<std::string> rules;  ///< rule ids listed inside allow(...)
  std::string reason;              ///< trailing free text; must be non-empty
  int line = 1;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

LexedFile lex(std::string_view src);

}  // namespace ckptfi::lint
