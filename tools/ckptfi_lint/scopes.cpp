#include "scopes.hpp"

#include <sstream>

namespace ckptfi::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

template <std::size_t N>
bool any_prefix(const std::string_view (&table)[N], std::string_view s) {
  for (std::string_view p : table) {
    if (starts_with(s, p)) return true;
  }
  return false;
}

}  // namespace

bool in_deterministic_module(std::string_view path) {
  return any_prefix(kDeterministicModules, path);
}

bool in_deterministic_exempt(std::string_view path) {
  return any_prefix(kDeterministicExempt, path);
}

bool is_kernel_hot_path(std::string_view path) {
  for (std::string_view p : kKernelHotPaths) {
    if (path == p) return true;
  }
  return false;
}

bool is_entropy_barrier(std::string_view qualified_name) {
  return any_prefix(kEntropyBarriers, qualified_name);
}

bool is_heap_barrier(std::string_view qualified_name) {
  return any_prefix(kHeapBarriers, qualified_name);
}

std::string scopes_dump() {
  std::ostringstream out;
  for (std::string_view p : kDeterministicModules)
    out << "deterministic-module: " << p << "\n";
  for (std::string_view p : kDeterministicExempt)
    out << "deterministic-exempt: " << p << "\n";
  for (std::string_view p : kKernelHotPaths)
    out << "kernel-hot-path: " << p << "\n";
  for (std::string_view p : kEntropyBarriers)
    out << "entropy-barrier: " << p << "\n";
  for (std::string_view p : kHeapBarriers)
    out << "heap-barrier: " << p << "\n";
  return out.str();
}

}  // namespace ckptfi::lint
