// Internal seam between the engine, the tier A token rules, the tier B
// interprocedural rules, and the index cache. Everything here is a pure
// function of file contents, which is what the content-hash cache relies on:
// a FileArtifact can be replayed from disk instead of recomputed, and the
// report that results is byte-identical.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"
#include "sema/index.hpp"

namespace ckptfi::lint {

/// A tier A finding before suppression matching.
struct RawFinding {
  std::string rule;
  int line = 1;
  std::string message;
};

/// Everything the engine needs from one file: tier A findings, the
/// suppression directives, and the tier B declaration index. Cacheable.
struct FileArtifact {
  std::vector<RawFinding> findings;
  std::vector<Suppression> suppressions;
  sema::FileIndex index;
};

/// Lex + tier A rules + declaration index, in one pass over the content.
FileArtifact analyze_file(const std::string& rel_path,
                          std::string_view content);

/// Tier A only (rules.cpp): path-scoped token-stream rules.
void tier_a_rules(const std::string& rel_path, const LexedFile& lexed,
                  std::vector<RawFinding>& out);

/// Tier B (sema/rules_b.cpp): interprocedural rules over every file's index.
/// Returned findings carry evidencing chains; suppression is not yet applied.
std::vector<Finding> interprocedural_rules(
    const std::vector<FileArtifact>& artifacts);

/// Turn an artifact's raw findings into report findings (matching allow()
/// directives, recording every directive as a SuppressionRecord) and bump
/// files_scanned. The engine calls this per file after cache replay;
/// check_file() is analyze_file + this.
void apply_artifact(const std::string& rel_path, const FileArtifact& art,
                    Report& report);

}  // namespace ckptfi::lint
