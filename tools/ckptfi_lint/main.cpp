// ckptfi_lint CLI — the CI gate.
//
//   ckptfi_lint [--root=DIR] [--json=PATH] [--no-default-excludes]
//               [--list-rules] [paths...]
//
// Paths default to `src bench examples tests tools`, resolved against
// --root
// (default: the current directory). Exit status: 0 when every finding is
// suppressed with a written reason, 1 when unsuppressed findings remain,
// 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  ckptfi::lint::Options opt;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : ckptfi::lint::rules()) {
        std::printf("%-28s %s\n", r.id.c_str(), r.summary.c_str());
      }
      return 0;
    }
    if (arg == "--no-default-excludes") {
      opt.default_excludes = false;
      continue;
    }
    if (arg.rfind("--root=", 0) == 0) {
      opt.root = arg.substr(7);
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: ckptfi_lint [--root=DIR] [--json=PATH] "
                   "[--no-default-excludes] [--list-rules] [paths...]\n");
      return 2;
    }
    opt.paths.push_back(arg);
  }

  const ckptfi::lint::Report report = ckptfi::lint::run(opt);
  std::fputs(report.text().c_str(), stdout);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ckptfi_lint: cannot write '%s'\n",
                   json_out.c_str());
      return 2;
    }
    out << report.sarif().dump(2) << "\n";
  }
  return report.unsuppressed() == 0 ? 0 : 1;
}
