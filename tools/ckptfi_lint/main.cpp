// ckptfi_lint CLI — the CI gate.
//
//   ckptfi_lint [--root=DIR] [--json=PATH] [--no-default-excludes]
//               [--index-cache[=DIR]] [--since=REV] [--changed-only]
//               [--list-rules] [--list-scopes] [paths...]
//
// Paths default to `src bench examples tests tools`, resolved against
// --root (default: the current directory). Exit status: 0 when every finding
// is suppressed with a written reason, 1 when unsuppressed findings remain,
// 2 on usage errors.
//
// `--index-cache` enables the on-disk per-file artifact cache (bare form
// defaults to <root>/.ckptfi-lint-cache); unchanged files replay instead of
// re-analyzing. `--since=REV` reports findings only for files `git diff
// --name-only REV` lists — the whole tree is still indexed so that
// interprocedural chains through unchanged files stay visible, which the
// cache makes cheap. `--changed-only` is `--since=HEAD`.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "scopes.hpp"

namespace {

/// Root-relative files `git diff --name-only <rev>` reports under `root`.
/// Returns false when git itself fails (not a repo, unknown rev).
bool git_changed_files(const std::string& root, const std::string& rev,
                       std::vector<std::string>& out) {
  const std::string cmd = "git -C '" + root + "' diff --name-only '" + rev +
                          "' -- 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return false;
  char line[4096];
  while (std::fgets(line, sizeof(line), pipe)) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    if (!s.empty()) out.push_back(std::move(s));
  }
  return pclose(pipe) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  ckptfi::lint::Options opt;
  std::string json_out;
  std::string since;
  bool want_cache = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : ckptfi::lint::rules()) {
        std::printf("%-28s %s\n", r.id.c_str(), r.summary.c_str());
      }
      return 0;
    }
    if (arg == "--list-scopes") {
      std::fputs(ckptfi::lint::scopes_dump().c_str(), stdout);
      return 0;
    }
    if (arg == "--no-default-excludes") {
      opt.default_excludes = false;
      continue;
    }
    if (arg == "--index-cache") {
      want_cache = true;
      continue;
    }
    if (arg.rfind("--index-cache=", 0) == 0) {
      want_cache = true;
      opt.index_cache = arg.substr(14);
      continue;
    }
    if (arg.rfind("--since=", 0) == 0) {
      since = arg.substr(8);
      continue;
    }
    if (arg == "--changed-only") {
      since = "HEAD";
      continue;
    }
    if (arg.rfind("--root=", 0) == 0) {
      opt.root = arg.substr(7);
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: ckptfi_lint [--root=DIR] [--json=PATH] "
                   "[--no-default-excludes] [--index-cache[=DIR]] "
                   "[--since=REV] [--changed-only] [--list-rules] "
                   "[--list-scopes] [paths...]\n");
      return 2;
    }
    opt.paths.push_back(arg);
  }
  if (want_cache && opt.index_cache.empty())
    opt.index_cache = opt.root + "/.ckptfi-lint-cache";

  if (!since.empty()) {
    opt.only_report_listed = true;
    if (!git_changed_files(opt.root, since, opt.only_report)) {
      std::fprintf(stderr, "ckptfi_lint: git diff --name-only '%s' failed\n",
                   since.c_str());
      return 2;
    }
  }

  const ckptfi::lint::Report report = ckptfi::lint::run(opt);
  std::fputs(report.text().c_str(), stdout);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ckptfi_lint: cannot write '%s'\n",
                   json_out.c_str());
      return 2;
    }
    out << report.sarif().dump(2) << "\n";
  }
  return report.unsuppressed() == 0 ? 0 : 1;
}
