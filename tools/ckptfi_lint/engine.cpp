// File discovery, the two-tier analysis drive, report assembly, and the two
// output encoders (human text and SARIF 2.1.0). The scan itself is
// deterministic: files are visited in sorted root-relative order and the
// cache replays byte-identical artifacts, so two runs over the same tree
// produce byte-identical reports — the same property the linter exists to
// protect.
//
// Per-file work (lex + tier A + declaration index) flows through the
// content-hash cache in sema/cache.{hpp,cpp}; tier B (sema/rules_b.cpp) then
// runs over every file's index, cached or fresh. That split is why
// `--changed-only` is sound: unchanged files replay from disk, so the whole
// tree's call graph is still present for interprocedural chains even when
// only one file is re-analyzed.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis.hpp"
#include "lint.hpp"
#include "sema/cache.hpp"
#include "util/crc32.hpp"

namespace ckptfi::lint {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".hh" || ext == ".h" || ext == ".inl";
}

const RuleInfo* rule_info(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

/// Match a finding at `line` against a file's directives: a directive covers
/// its own line and the line directly below (end-of-line or line-above
/// placement), must name the rule, and must carry a written reason. Returns
/// the directive index or npos.
std::size_t match_suppression(const std::vector<Suppression>& sups,
                              const std::string& rule, int line) {
  for (std::size_t i = 0; i < sups.size(); ++i) {
    const Suppression& s = sups[i];
    const bool covers = s.line == line || s.line == line - 1;
    const bool names_rule =
        std::find(s.rules.begin(), s.rules.end(), rule) != s.rules.end();
    if (covers && names_rule && !s.reason.empty()) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Find the SuppressionRecord in `report` that mirrors directive index `di`
/// of `rel_path` (records are appended in directive order per file).
SuppressionRecord* record_for(Report& report, const std::string& rel_path,
                              int line) {
  for (SuppressionRecord& rec : report.suppressions) {
    if (rec.file == rel_path && rec.line == line) return &rec;
  }
  return nullptr;
}

Json location_json(const std::string& file, int line) {
  Json region = Json::object();
  region["startLine"] = line;
  Json artifact = Json::object();
  artifact["uri"] = file;
  Json phys = Json::object();
  phys["artifactLocation"] = std::move(artifact);
  phys["region"] = std::move(region);
  Json loc = Json::object();
  loc["physicalLocation"] = std::move(phys);
  return loc;
}

Json thread_flow_json(const std::vector<ChainStep>& chain) {
  Json locs = Json::array();
  for (const ChainStep& step : chain) {
    Json loc = location_json(step.file, step.line);
    Json msg = Json::object();
    msg["text"] = step.note;
    loc["message"] = std::move(msg);
    Json tf_loc = Json::object();
    tf_loc["location"] = std::move(loc);
    locs.push_back(std::move(tf_loc));
  }
  Json tf = Json::object();
  tf["locations"] = std::move(locs);
  return tf;
}

}  // namespace

std::size_t Report::unsuppressed() const {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.suppressed ? 0 : 1;
  return n;
}

std::size_t Report::suppressed() const {
  return findings.size() - unsuppressed();
}

void apply_artifact(const std::string& rel_path, const FileArtifact& art,
                    Report& report) {
  std::vector<SuppressionRecord> records;
  records.reserve(art.suppressions.size());
  for (const Suppression& s : art.suppressions) {
    SuppressionRecord rec;
    rec.file = rel_path;
    rec.line = s.line;
    for (std::size_t i = 0; i < s.rules.size(); ++i) {
      if (i) rec.rules += ",";
      rec.rules += s.rules[i];
    }
    rec.reason = s.reason;
    records.push_back(std::move(rec));
  }

  for (const RawFinding& f : art.findings) {
    Finding fd;
    fd.rule = f.rule;
    fd.file = rel_path;
    fd.line = f.line;
    fd.message = f.message;
    // lint-allow-needs-reason is deliberately unsuppressable: a directive
    // cannot vouch for itself.
    if (fd.rule != "lint-allow-needs-reason") {
      const std::size_t di = match_suppression(art.suppressions, fd.rule,
                                               fd.line);
      if (di != static_cast<std::size_t>(-1)) {
        fd.suppressed = true;
        fd.suppress_reason = art.suppressions[di].reason;
        records[di].used = true;
      }
    }
    report.findings.push_back(std::move(fd));
  }
  for (SuppressionRecord& rec : records)
    report.suppressions.push_back(std::move(rec));
  ++report.files_scanned;
}

Report run(const Options& opt) {
  Report report;
  std::vector<std::string> paths = opt.paths;
  if (paths.empty()) paths = {"src", "bench", "examples", "tests", "tools"};

  std::vector<std::pair<std::string, fs::path>> files;  // (rel, absolute)
  const fs::path root = fs::path(opt.root);
  for (const std::string& p : paths) {
    const fs::path base = root / p;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.emplace_back(fs::relative(base, root, ec).generic_string(), base);
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec) || !lintable_extension(it->path()))
        continue;
      std::string rel = fs::relative(it->path(), root, ec).generic_string();
      if (opt.default_excludes &&
          rel.find("tests/lint/fixtures") != std::string::npos)
        continue;
      files.emplace_back(std::move(rel), it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Per-file pass: replay from the cache or analyze fresh. Every file's
  // artifact is kept — tier B needs the whole tree's indexes.
  std::vector<FileArtifact> artifacts;
  std::vector<std::string> rels;
  artifacts.reserve(files.size());
  for (const auto& [rel, abs] : files) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const std::uint32_t crc = crc32(content.data(), content.size());
    FileArtifact art;
    bool cached = false;
    if (!opt.index_cache.empty()) {
      if (auto hit = sema::cache_load(opt.index_cache, rel, crc)) {
        art = std::move(*hit);
        cached = true;
        ++report.index_cache_hits;
      }
    }
    if (!cached) {
      art = analyze_file(rel, content);
      ++report.files_indexed;
      if (!opt.index_cache.empty())
        sema::cache_store(opt.index_cache, rel, crc, art);
    }
    apply_artifact(rel, art, report);
    rels.push_back(rel);
    artifacts.push_back(std::move(art));
  }

  // Tier B: interprocedural rules over every file's index. Their findings
  // land at a call site in a policed file, so the directive that suppresses
  // one lives in that file like any tier A finding.
  std::vector<Finding> tier_b = interprocedural_rules(artifacts);
  for (Finding& fd : tier_b) {
    const auto at = std::find(rels.begin(), rels.end(), fd.file);
    if (at != rels.end()) {
      const FileArtifact& art = artifacts[at - rels.begin()];
      const std::size_t di = match_suppression(art.suppressions, fd.rule,
                                               fd.line);
      if (di != static_cast<std::size_t>(-1)) {
        fd.suppressed = true;
        fd.suppress_reason = art.suppressions[di].reason;
        if (SuppressionRecord* rec =
                record_for(report, fd.file, art.suppressions[di].line))
          rec->used = true;
      }
    }
    report.findings.push_back(std::move(fd));
  }

  // --since/--changed-only: the whole tree was indexed (chains may pass
  // through unchanged files) but only the listed files are *reported*.
  if (opt.only_report_listed) {
    const std::set<std::string> keep(opt.only_report.begin(),
                                     opt.only_report.end());
    auto drop = [&](const std::string& file) { return !keep.count(file); };
    report.findings.erase(
        std::remove_if(report.findings.begin(), report.findings.end(),
                       [&](const Finding& f) { return drop(f.file); }),
        report.findings.end());
    report.suppressions.erase(
        std::remove_if(report.suppressions.begin(), report.suppressions.end(),
                       [&](const SuppressionRecord& s) {
                         return drop(s.file);
                       }),
        report.suppressions.end());
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(report.suppressions.begin(), report.suppressions.end(),
            [](const SuppressionRecord& a, const SuppressionRecord& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return report;
}

std::string Report::text() const {
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (const RuleInfo* info = rule_info(f.rule)) {
      out << "    hint: " << info->hint << "\n";
    }
    for (const ChainStep& step : f.chain) {
      out << "    chain: " << step.file << ":" << step.line << " — "
          << step.note << "\n";
    }
    for (const ChainStep& step : f.counter_chain) {
      out << "    inverse: " << step.file << ":" << step.line << " — "
          << step.note << "\n";
    }
  }
  for (const Finding& f : findings) {
    if (!f.suppressed) continue;
    out << "suppressed: " << f.file << ":" << f.line << " [" << f.rule
        << "] — " << f.suppress_reason << "\n";
  }
  for (const SuppressionRecord& s : suppressions) {
    if (!s.used) {
      out << "note: unused suppression at " << s.file << ":" << s.line
          << " allow(" << s.rules << ")\n";
    }
  }
  out << "ckptfi-lint: " << files_scanned << " file(s), "
      << findings.size() << " finding(s), " << unsuppressed()
      << " unsuppressed, " << suppressed() << " suppressed ("
      << suppressions.size() << " allow directive(s))\n";
  if (files_indexed || index_cache_hits) {
    out << "ckptfi-lint: index: " << files_indexed << " analyzed, "
        << index_cache_hits << " from cache\n";
  }
  return out.str();
}

Json Report::sarif() const {
  Json driver = Json::object();
  driver["name"] = "ckptfi-lint";
  driver["informationUri"] = "docs/LINT.md";
  Json rule_list = Json::array();
  for (const RuleInfo& r : rules()) {
    Json jr = Json::object();
    jr["id"] = r.id;
    Json sd = Json::object();
    sd["text"] = r.summary;
    jr["shortDescription"] = std::move(sd);
    Json help = Json::object();
    help["text"] = r.hint;
    jr["help"] = std::move(help);
    rule_list.push_back(std::move(jr));
  }
  driver["rules"] = std::move(rule_list);

  Json results = Json::array();
  for (const Finding& f : findings) {
    Json res = Json::object();
    res["ruleId"] = f.rule;
    res["level"] = "error";
    Json msg = Json::object();
    msg["text"] = f.message;
    res["message"] = std::move(msg);
    Json locs = Json::array();
    locs.push_back(location_json(f.file, f.line));
    res["locations"] = std::move(locs);
    if (!f.chain.empty()) {
      // Tier B evidence: the chain (and, for lock-order inversions, the
      // inverse chain as a second thread flow — the two threads that
      // deadlock against each other).
      Json flows = Json::array();
      flows.push_back(thread_flow_json(f.chain));
      if (!f.counter_chain.empty())
        flows.push_back(thread_flow_json(f.counter_chain));
      Json cf = Json::object();
      cf["threadFlows"] = std::move(flows);
      Json cfs = Json::array();
      cfs.push_back(std::move(cf));
      res["codeFlows"] = std::move(cfs);

      Json related = Json::array();
      for (const ChainStep& step : f.chain) {
        Json loc = location_json(step.file, step.line);
        Json m = Json::object();
        m["text"] = step.note;
        loc["message"] = std::move(m);
        related.push_back(std::move(loc));
      }
      for (const ChainStep& step : f.counter_chain) {
        Json loc = location_json(step.file, step.line);
        Json m = Json::object();
        m["text"] = step.note;
        loc["message"] = std::move(m);
        related.push_back(std::move(loc));
      }
      res["relatedLocations"] = std::move(related);
    }
    if (f.suppressed) {
      Json sup = Json::object();
      sup["kind"] = "inSource";
      sup["justification"] = f.suppress_reason;
      Json sups = Json::array();
      sups.push_back(std::move(sup));
      res["suppressions"] = std::move(sups);
    }
    results.push_back(std::move(res));
  }

  Json tool = Json::object();
  tool["driver"] = std::move(driver);
  Json props = Json::object();
  props["filesScanned"] = files_scanned;
  props["unsuppressed"] = unsuppressed();
  props["suppressed"] = suppressed();
  Json run_obj = Json::object();
  run_obj["tool"] = std::move(tool);
  run_obj["results"] = std::move(results);
  run_obj["properties"] = std::move(props);
  Json runs = Json::array();
  runs.push_back(std::move(run_obj));

  Json doc = Json::object();
  doc["version"] = "2.1.0";
  doc["$schema"] =
      "https://json.schemastore.org/sarif-2.1.0.json";
  doc["runs"] = std::move(runs);
  return doc;
}

}  // namespace ckptfi::lint
