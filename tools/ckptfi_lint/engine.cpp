// File discovery, report assembly, and the two output encoders (human text
// and SARIF 2.1.0). The scan itself is deterministic: files are visited in
// sorted root-relative order, so two runs over the same tree produce
// byte-identical reports — the same property the linter exists to protect.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace ckptfi::lint {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".hh" || ext == ".h" || ext == ".inl";
}

const RuleInfo* rule_info(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

}  // namespace

std::size_t Report::unsuppressed() const {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.suppressed ? 0 : 1;
  return n;
}

std::size_t Report::suppressed() const {
  return findings.size() - unsuppressed();
}

Report run(const Options& opt) {
  Report report;
  std::vector<std::string> paths = opt.paths;
  if (paths.empty()) paths = {"src", "bench", "examples", "tests", "tools"};

  std::vector<std::pair<std::string, fs::path>> files;  // (rel, absolute)
  const fs::path root = fs::path(opt.root);
  for (const std::string& p : paths) {
    const fs::path base = root / p;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.emplace_back(fs::relative(base, root, ec).generic_string(), base);
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec) || !lintable_extension(it->path()))
        continue;
      std::string rel = fs::relative(it->path(), root, ec).generic_string();
      if (opt.default_excludes &&
          rel.find("tests/lint/fixtures") != std::string::npos)
        continue;
      files.emplace_back(std::move(rel), it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const auto& [rel, abs] : files) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    check_file(rel, content, report);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(report.suppressions.begin(), report.suppressions.end(),
            [](const SuppressionRecord& a, const SuppressionRecord& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return report;
}

std::string Report::text() const {
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (const RuleInfo* info = rule_info(f.rule)) {
      out << "    hint: " << info->hint << "\n";
    }
  }
  for (const Finding& f : findings) {
    if (!f.suppressed) continue;
    out << "suppressed: " << f.file << ":" << f.line << " [" << f.rule
        << "] — " << f.suppress_reason << "\n";
  }
  for (const SuppressionRecord& s : suppressions) {
    if (!s.used) {
      out << "note: unused suppression at " << s.file << ":" << s.line
          << " allow(" << s.rules << ")\n";
    }
  }
  out << "ckptfi-lint: " << files_scanned << " file(s), "
      << findings.size() << " finding(s), " << unsuppressed()
      << " unsuppressed, " << suppressed() << " suppressed ("
      << suppressions.size() << " allow directive(s))\n";
  return out.str();
}

Json Report::sarif() const {
  Json driver = Json::object();
  driver["name"] = "ckptfi-lint";
  driver["informationUri"] = "docs/LINT.md";
  Json rule_list = Json::array();
  for (const RuleInfo& r : rules()) {
    Json jr = Json::object();
    jr["id"] = r.id;
    Json sd = Json::object();
    sd["text"] = r.summary;
    jr["shortDescription"] = std::move(sd);
    Json help = Json::object();
    help["text"] = r.hint;
    jr["help"] = std::move(help);
    rule_list.push_back(std::move(jr));
  }
  driver["rules"] = std::move(rule_list);

  Json results = Json::array();
  for (const Finding& f : findings) {
    Json res = Json::object();
    res["ruleId"] = f.rule;
    res["level"] = "error";
    Json msg = Json::object();
    msg["text"] = f.message;
    res["message"] = std::move(msg);
    Json region = Json::object();
    region["startLine"] = f.line;
    Json artifact = Json::object();
    artifact["uri"] = f.file;
    Json phys = Json::object();
    phys["artifactLocation"] = std::move(artifact);
    phys["region"] = std::move(region);
    Json loc = Json::object();
    loc["physicalLocation"] = std::move(phys);
    Json locs = Json::array();
    locs.push_back(std::move(loc));
    res["locations"] = std::move(locs);
    if (f.suppressed) {
      Json sup = Json::object();
      sup["kind"] = "inSource";
      sup["justification"] = f.suppress_reason;
      Json sups = Json::array();
      sups.push_back(std::move(sup));
      res["suppressions"] = std::move(sups);
    }
    results.push_back(std::move(res));
  }

  Json tool = Json::object();
  tool["driver"] = std::move(driver);
  Json props = Json::object();
  props["filesScanned"] = files_scanned;
  props["unsuppressed"] = unsuppressed();
  props["suppressed"] = suppressed();
  Json run_obj = Json::object();
  run_obj["tool"] = std::move(tool);
  run_obj["results"] = std::move(results);
  run_obj["properties"] = std::move(props);
  Json runs = Json::array();
  runs.push_back(std::move(run_obj));

  Json doc = Json::object();
  doc["version"] = "2.1.0";
  doc["$schema"] =
      "https://json.schemastore.org/sarif-2.1.0.json";
  doc["runs"] = std::move(runs);
  return doc;
}

}  // namespace ckptfi::lint
