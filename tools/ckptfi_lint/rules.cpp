// Rule implementations. Every rule is a token-stream pattern tied to a
// project invariant; docs/LINT.md records the motivating incident for each.
//
// Which rules apply to a file depends on where it lives:
//   - determinism rules: the deterministic modules
//     src/{tensor,nn,core,hdf5,solver,data,models} — the code whose outputs
//     EXPERIMENTS.md numbers are built from — plus the fleet's transport and
//     processes (src/net, tools/ckptfi_fleetd, tools/ckptfi_worker): the
//     fleet's whole value is that sharded rows are byte-identical to a
//     single-process run, so entropy there is as load-bearing as in a
//     kernel. (steady_clock is fine — lease deadlines are wall-clock-free
//     reporting, not row content; system_clock and friends are not.)
//     src/util is exempt (it hosts the seeded RNG itself) and src/obs is
//     exempt (diagnostics may read wall clocks).
//   - concurrency rules: everywhere.
//   - arena + simd lane-order rules: the kernel hot-path files
//     src/tensor/{ops,ops_naive,ops_simd,kernels}.cpp, whose scratch must
//     come from the Workspace arena and whose reductions must use the
//     documented fixed lane fold (never horizontal-add intrinsics).
//   - obs conventions: bench/bench_*.cpp harnesses.
#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "analysis.hpp"
#include "lexer.hpp"
#include "lint.hpp"
#include "scopes.hpp"
#include "sema/index.hpp"

namespace ckptfi::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string_view basename_of(std::string_view path) {
  const auto slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

// Path scoping (deterministic modules, kernel hot paths) comes from the
// shared tables in scopes.hpp — the same data --list-scopes dumps and
// docs/LINT.md documents.

bool is_bench_harness(std::string_view path) {
  if (!starts_with(path, "bench/")) return false;
  const std::string_view base = basename_of(path);
  return starts_with(base, "bench_") && base.size() > 4 &&
         base.substr(base.size() - 4) == ".cpp";
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::Identifier && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::Punct && t.text == text;
}

/// Index just past the matching '>' of a template argument list whose '<'
/// sits at `open`. Returns `open` unchanged if no balanced close is found
/// within a sane distance (then it was a comparison, not a template).
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), open + 64);
  for (std::size_t i = open; i < limit; ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    else if (is_punct(toks[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(toks[i], ";") || is_punct(toks[i], "{") ||
               is_punct(toks[i], "}")) {
      break;
    }
  }
  return open;
}

std::size_t skip_parens(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")") && --depth == 0) return i + 1;
  }
  return toks.size();
}

// ---------------------------------------------------------------- rules --

constexpr char kDetRng[] = "det-rng-entropy";
constexpr char kDetUnseededMt[] = "det-rng-unseeded-mt19937";
constexpr char kDetUnordered[] = "det-unordered-container";
constexpr char kNotifyUnderLock[] = "conc-notify-under-lock";
constexpr char kAtomicFloat[] = "conc-atomic-float";
constexpr char kArenaHeap[] = "arena-kernel-heap";
constexpr char kBenchObs[] = "obs-bench-conventions";
constexpr char kPrefixMutation[] = "det-prefix-cache-mutation";
constexpr char kSimdLaneOrder[] = "det-simd-lane-order";
constexpr char kAllowReason[] = "lint-allow-needs-reason";
// Tier B (interprocedural, sema/rules_b.cpp) — registered here so
// --list-rules and the SARIF driver describe the full rule set.
constexpr char kTransEntropy[] = "det-transitive-entropy";
constexpr char kTransHeap[] = "arena-transitive-heap";
constexpr char kLockOrder[] = "conc-lock-order";

/// det-rng-entropy: process-state entropy sources in deterministic modules.
void check_rng_entropy(const std::vector<Token>& toks,
                       std::vector<RawFinding>& out) {
  // Flagged on any mention: these names have no deterministic use.
  static const std::vector<std::string_view> kAlways = {
      "random_device", "system_clock", "gettimeofday", "drand48",
      "lrand48",       "rand_r",       "srand",        "srand48"};
  // Flagged only as calls: the bare words are common identifiers.
  static const std::vector<std::string_view> kCalls = {"rand", "time",
                                                       "clock"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier) continue;
    const std::string& t = toks[i].text;
    const bool always =
        std::find(kAlways.begin(), kAlways.end(), t) != kAlways.end();
    const bool call =
        !always &&
        std::find(kCalls.begin(), kCalls.end(), t) != kCalls.end() &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        // a member call like foo.time(...) is not the libc function
        (i == 0 || (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")));
    if (always || call) {
      out.push_back({kDetRng, toks[i].line,
                     "'" + t +
                         "' draws entropy/time from process state; trial "
                         "results would stop being a pure function of "
                         "(--seed, trial index)"});
    }
  }
}

/// det-rng-unseeded-mt19937: a default-constructed std::mt19937 in a
/// deterministic module. The default stream is identical for every trial —
/// which silently decorrelates nothing — and the usual "fix" is seeding from
/// random_device, which breaks replay. Seeds must come from the trial
/// stream, explicitly.
void check_unseeded_mt19937(const std::vector<Token>& toks,
                            std::vector<RawFinding>& out) {
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_ident(toks[i], "mt19937") && !is_ident(toks[i], "mt19937_64"))
      continue;
    // Declarator: "mt19937[_64] name ;" or "mt19937[_64] name { }" — any
    // parenthesised or non-empty braced initialiser counts as seeded (the
    // seed's provenance is det-rng-entropy's business).
    if (i + 1 >= n || toks[i + 1].kind != TokKind::Identifier) continue;
    const std::string& var = toks[i + 1].text;
    const std::size_t after = i + 2;
    const bool plain_decl = after < n && is_punct(toks[after], ";");
    const bool empty_brace = after + 1 < n && is_punct(toks[after], "{") &&
                             is_punct(toks[after + 1], "}");
    if (plain_decl || empty_brace) {
      out.push_back({kDetUnseededMt, toks[i].line,
                     "std::" + toks[i].text + " '" + var +
                         "' is default-constructed: every trial draws the "
                         "same documented stream; seed it from "
                         "core::trial_seed(campaign, index)"});
    }
  }
}

/// det-unordered-container: hash containers have unspecified iteration
/// order, which leaks into any loop that touches one.
void check_unordered(const std::vector<Token>& toks,
                     std::vector<RawFinding>& out) {
  for (const Token& t : toks) {
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      out.push_back({kDetUnordered, t.line,
                     "std::" + t.text +
                         " iterates in unspecified order inside a "
                         "deterministic module"});
    }
  }
}

/// conc-atomic-float: atomic<float|double> accumulation is order-dependent
/// (FP addition does not commute across threads), so results depend on
/// scheduling.
void check_atomic_float(const std::vector<Token>& toks,
                        std::vector<RawFinding>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "atomic") || !is_punct(toks[i + 1], "<")) continue;
    const Token& a = toks[i + 2];
    const bool long_double = is_ident(a, "long") && i + 3 < toks.size() &&
                             is_ident(toks[i + 3], "double");
    if (is_ident(a, "float") || is_ident(a, "double") || long_double) {
      out.push_back({kAtomicFloat, toks[i].line,
                     "std::atomic<" + std::string(long_double ? "long double"
                                                              : a.text) +
                         ">: cross-thread FP accumulation is "
                         "scheduling-order dependent"});
    }
  }
}

/// conc-notify-under-lock: condition_variable::notify_* while a
/// lock_guard/unique_lock declared in an enclosing scope is still live. The
/// woken thread immediately blocks on the still-held mutex — and if the
/// notifier's lock protects state the waiter re-checks, the exact PR 3
/// parallel_for shape, the handshake can outlive the caller's stack.
/// Lambda bodies reset the live-lock set: their body runs later, not under
/// the locks that happen to be live at the capture site.
void check_notify_under_lock(const std::vector<Token>& toks,
                             std::vector<RawFinding>& out) {
  const std::size_t n = toks.size();

  // Pass 1: mark '{' tokens that open a lambda body: "]" [params] [specs] "{".
  std::vector<char> lambda_brace(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_punct(toks[i], "]")) continue;
    std::size_t j = i + 1;
    if (j < n && is_punct(toks[j], "(")) j = skip_parens(toks, j);
    // Walk over trailing-return/specifier tokens; bail on anything that
    // cannot appear between a lambda's parameter list and its body.
    std::size_t guard = 0;
    while (j < n && guard++ < 24) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        lambda_brace[j] = 1;
        break;
      }
      const bool benign =
          t.kind == TokKind::Identifier || is_punct(t, "->") ||
          is_punct(t, "::") || is_punct(t, "<") || is_punct(t, ">") ||
          is_punct(t, ",") || is_punct(t, "&") || is_punct(t, "*");
      if (!benign) break;
      ++j;
    }
  }

  struct ActiveLock {
    int depth;
    int line;
    std::string var;
  };
  struct LambdaFrame {
    int entry_depth;
    std::vector<ActiveLock> saved;
  };
  std::vector<ActiveLock> locks;
  std::vector<LambdaFrame> frames;
  int depth = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      if (lambda_brace[i]) {
        frames.push_back({depth, std::move(locks)});
        locks.clear();
      }
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      if (!frames.empty() && frames.back().entry_depth == depth) {
        locks = std::move(frames.back().saved);
        frames.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::Identifier) continue;

    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock") {
      std::size_t j = i + 1;
      if (j < n && is_punct(toks[j], "<")) j = skip_template_args(toks, j);
      if (j < n && toks[j].kind == TokKind::Identifier && j + 1 < n &&
          (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
        locks.push_back({depth, toks[j].line, toks[j].text});
      }
      continue;
    }
    if (t.text == "unlock" && i >= 1 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      // lk.unlock() releases; drop the lock matching the receiver name, or
      // the innermost one when the receiver is not a plain identifier.
      std::string var =
          i >= 2 && toks[i - 2].kind == TokKind::Identifier ? toks[i - 2].text
                                                            : "";
      auto it = std::find_if(locks.rbegin(), locks.rend(),
                             [&](const ActiveLock& l) { return l.var == var; });
      if (it != locks.rend()) {
        locks.erase(std::next(it).base());
      } else if (!locks.empty()) {
        locks.pop_back();
      }
      continue;
    }
    if ((t.text == "notify_one" || t.text == "notify_all") && i + 1 < n &&
        is_punct(toks[i + 1], "(") && !locks.empty()) {
      out.push_back(
          {kNotifyUnderLock, t.line,
           t.text + "() while '" + locks.back().var + "' (line " +
               std::to_string(locks.back().line) +
               ") still holds its mutex; the waiter wakes just to block"});
    }
  }
}

/// arena-kernel-heap: heap traffic in the kernel hot-path files. Scratch
/// must come from Workspace::tls() (per-thread bump arena, zero steady-state
/// allocations); Tensor::resize on *outputs* is the documented contract and
/// is not flagged.
void check_kernel_heap(const std::vector<Token>& toks,
                       std::vector<RawFinding>& out) {
  static const std::vector<std::string_view> kAllocCalls = {
      "malloc", "calloc",      "realloc",    "free",
      "aligned_alloc", "make_unique", "make_shared"};
  static const std::vector<std::string_view> kGrowthCalls = {
      "push_back", "emplace_back", "reserve", "assign", "insert", "emplace"};
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "new") {
      out.push_back({kArenaHeap, t.line,
                     "operator new in a kernel hot path allocates per call"});
      continue;
    }
    const bool member_call = i >= 1 && (is_punct(toks[i - 1], ".") ||
                                        is_punct(toks[i - 1], "->"));
    if (std::find(kAllocCalls.begin(), kAllocCalls.end(), t.text) !=
            kAllocCalls.end() &&
        i + 1 < n &&
        (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "<")) &&
        !member_call) {
      out.push_back({kArenaHeap, t.line,
                     "'" + t.text + "' heap call in a kernel hot path"});
      continue;
    }
    if (member_call && i + 1 < n && is_punct(toks[i + 1], "(") &&
        std::find(kGrowthCalls.begin(), kGrowthCalls.end(), t.text) !=
            kGrowthCalls.end()) {
      out.push_back({kArenaHeap, t.line,
                     "container '" + t.text +
                         "' may reallocate inside a kernel hot path"});
      continue;
    }
    if (t.text == "vector" && i + 1 < n && is_punct(toks[i + 1], "<")) {
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after != i + 1 && after < n &&
          toks[after].kind == TokKind::Identifier && after + 1 < n &&
          (is_punct(toks[after + 1], ";") || is_punct(toks[after + 1], "=") ||
           is_punct(toks[after + 1], "(") ||
           is_punct(toks[after + 1], "{"))) {
        out.push_back({kArenaHeap, t.line,
                       "std::vector value '" + toks[after].text +
                           "' owns heap storage in a kernel hot path"});
      }
      continue;
    }
  }
}

/// det-prefix-cache-mutation: PrefixCache entries are shared immutable
/// snapshots — one cached upstream forward serves every trial in a layer
/// group, possibly concurrently. Writing through one (const_cast, or binding
/// get_or_build's result to a mutable reference) poisons every later trial
/// that hits the same key: results silently stop matching the full-recompute
/// path and the prefix-on ≡ prefix-off ctest contract breaks. Only checked
/// in files that actually touch the cache types; the cache's own
/// implementation (src/core/prefix_cache.cpp) legitimately builds entries
/// in place before publishing them.
void check_prefix_cache_mutation(const std::vector<Token>& toks,
                                 std::vector<RawFinding>& out) {
  bool touches_cache = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::Identifier &&
        (t.text == "PrefixCache" || t.text == "PrefixEntryData" ||
         t.text == "get_or_build")) {
      touches_cache = true;
      break;
    }
  }
  if (!touches_cache) return;

  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "const_cast") {
      out.push_back({kPrefixMutation, t.line,
                     "const_cast in a prefix-cache consumer: cached entries "
                     "are shared across trials and must stay immutable"});
      continue;
    }
    // "auto & name = ... get_or_build (": a mutable binding to the shared
    // entry. `const auto&` and by-value copies are fine.
    if (t.text == "auto" && i + 3 < n && is_punct(toks[i + 1], "&") &&
        toks[i + 2].kind == TokKind::Identifier &&
        is_punct(toks[i + 3], "=") &&
        !(i >= 1 && is_ident(toks[i - 1], "const"))) {
      const std::size_t limit = std::min(n, i + 16);
      for (std::size_t j = i + 4; j < limit; ++j) {
        if (is_punct(toks[j], ";")) break;
        if (is_ident(toks[j], "get_or_build")) {
          out.push_back(
              {kPrefixMutation, t.line,
               "mutable reference '" + toks[i + 2].text +
                   "' binds a shared prefix-cache entry; take const auto&"});
          break;
        }
      }
    }
  }
}

/// det-simd-lane-order: across-lane horizontal-reduce intrinsics in the
/// kernel hot paths. _mm256_hadd_pd and friends fold adjacent lanes in an
/// ISA-defined order that differs from the documented lane tree
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), so a kernel using them would pass
/// ulp-tolerance tests yet silently break the simd tier's scalar ≡ vector
/// bitwise contract (docs/KERNELS.md) — the exact drift the one-time golden
/// re-pin was priced for. Lane accumulators must be stored out and folded
/// with explicit scalar adds.
void check_simd_lane_order(const std::vector<Token>& toks,
                           std::vector<RawFinding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier || !is_punct(toks[i + 1], "(")) continue;
    const std::string_view name = t.text;
    const bool x86_hadd = starts_with(name, "_mm") && contains(name, "_hadd_");
    const bool avx512_reduce = starts_with(name, "_mm512_reduce_add_");
    const bool neon_across = starts_with(name, "vaddv") ||
                             starts_with(name, "vpadd");
    if (x86_hadd || avx512_reduce || neon_across) {
      out.push_back({kSimdLaneOrder, t.line,
                     "'" + t.text +
                         "' folds vector lanes in ISA-defined order; keep "
                         "the documented fixed lane tree fold so scalar and "
                         "vector stay bitwise-identical"});
    }
  }
}

/// obs-bench-conventions: every bench harness stamps a run_start event (so
/// metrics/trace artifacts record what produced them) and supports
/// --json-out snapshots.
void check_bench_conventions(const std::vector<Token>& toks,
                             std::vector<RawFinding>& out) {
  bool stamps_run_start = false;
  bool supports_json_out = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::Identifier &&
        (t.text == "print_banner" || t.text == "emit_run_start" ||
         t.text == "run_main")) {
      // The shared helpers (bench/common.hpp, bench/micro_common.hpp) both
      // stamp run_start on the bench's behalf.
      stamps_run_start = true;
    }
    if (t.kind == TokKind::String) {
      if (contains(t.text, "run_start")) stamps_run_start = true;
      if (contains(t.text, "json-out") || t.text == "bench/common.hpp" ||
          t.text == "bench/micro_common.hpp")
        supports_json_out = true;
    }
  }
  if (!stamps_run_start) {
    out.push_back({kBenchObs, 1,
                   "bench never stamps a run_start event; call "
                   "bench::print_banner or obs::emit_event(\"run_start\", ...) "
                   "so artifacts record their producer"});
  }
  if (!supports_json_out) {
    out.push_back({kBenchObs, 1,
                   "bench does not support --json-out metrics snapshots; "
                   "parse it (bench/common.hpp does this for you)"});
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kDetRng,
       "No process-state entropy (rand, std::random_device, time(), wall "
       "clock) in deterministic modules",
       "draw from util/rng.hpp (splitmix64/xoshiro) seeded via "
       "core::trial_seed(campaign, index)"},
      {kDetUnseededMt,
       "No default-constructed std::mt19937/mt19937_64 in deterministic "
       "modules",
       "seed explicitly from the trial stream: "
       "std::mt19937 gen(core::trial_seed(campaign, index))"},
      {kDetUnordered,
       "No std::unordered_{map,set} in deterministic modules",
       "use std::map/std::set (ordered iteration) or a sorted vector"},
      {kNotifyUnderLock,
       "No condition_variable notify while a scope lock is live",
       "close or unlock the lock scope before notifying (see "
       "ThreadPool::parallel_for for the house pattern)"},
      {kAtomicFloat,
       "No std::atomic<float|double>",
       "accumulate per-thread partials and reduce in a fixed (ascending) "
       "order, or use an integer atomic"},
      {kArenaHeap,
       "No heap allocation in kernel hot paths outside the Workspace arena",
       "take scratch from Workspace::tls() under a Workspace::Scope "
       "(docs/KERNELS.md)"},
      {kBenchObs,
       "Bench harnesses stamp run_start and support --json-out",
       "route options through bench::BenchOptions::parse and call "
       "bench::print_banner"},
      {kPrefixMutation,
       "No mutation of shared PrefixCache entries (const_cast or mutable "
       "reference bindings of get_or_build results)",
       "treat cached prefixes as immutable snapshots: hold them as "
       "std::shared_ptr<const PrefixEntryData> / const auto&"},
      {kSimdLaneOrder,
       "No across-lane horizontal-reduce intrinsics (_mm*_hadd_*, "
       "_mm512_reduce_add_*, vaddv*/vpadd*) in kernel hot paths",
       "store the lane accumulators and fold them with the documented "
       "fixed tree: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) (docs/KERNELS.md)"},
      {kAllowReason,
       "Every ckptfi-lint suppression names a rule and carries a reason",
       "write '// ckptfi-lint: allow(<rule>) <why this is safe here>'"},
      {kTransEntropy,
       "No deterministic-module function transitively reaches an "
       "entropy/time source through helpers (interprocedural)",
       "route the value through the seeded trial stream, or move the helper "
       "behind the obs:: observation-only boundary if it never feeds row "
       "bytes"},
      {kTransHeap,
       "No kernel hot-path function transitively reaches heap allocation "
       "through helpers (interprocedural)",
       "take scratch from Workspace::tls() in the helper too, or pass the "
       "caller's arena span down (docs/KERNELS.md)"},
      {kLockOrder,
       "No two call chains acquire the same pair of mutexes in opposite "
       "orders (interprocedural ABBA deadlock)",
       "pick one acquisition order per mutex pair and make every chain "
       "follow it, or collapse to std::scoped_lock(a, b) at a single site"},
  };
  return kRules;
}

void tier_a_rules(const std::string& rel_path, const LexedFile& lexed,
                  std::vector<RawFinding>& out) {
  if (in_deterministic_module(rel_path)) {
    check_rng_entropy(lexed.tokens, out);
    check_unseeded_mt19937(lexed.tokens, out);
    check_unordered(lexed.tokens, out);
    // The cache implementation builds entries in place before publishing
    // them; everywhere else the entries are read-only.
    if (rel_path != "src/core/prefix_cache.cpp")
      check_prefix_cache_mutation(lexed.tokens, out);
  }
  check_notify_under_lock(lexed.tokens, out);
  check_atomic_float(lexed.tokens, out);
  if (is_kernel_hot_path(rel_path)) {
    check_kernel_heap(lexed.tokens, out);
    check_simd_lane_order(lexed.tokens, out);
  }
  if (is_bench_harness(rel_path)) check_bench_conventions(lexed.tokens, out);

  // A malformed allow() is itself a finding — deliberately unsuppressable
  // (the engine never matches kAllowReason against directives).
  for (const Suppression& s : lexed.suppressions) {
    if (s.rules.empty() || s.reason.empty()) {
      out.push_back({kAllowReason, s.line,
                     "suppression must name a rule and carry a written "
                     "reason"});
    }
  }
}

FileArtifact analyze_file(const std::string& rel_path,
                          std::string_view content) {
  const LexedFile lexed = lex(content);
  FileArtifact art;
  tier_a_rules(rel_path, lexed, art.findings);
  art.suppressions = lexed.suppressions;
  art.index = sema::build_index(rel_path, lexed);
  return art;
}

void check_file(const std::string& rel_path, std::string_view content,
                Report& report) {
  apply_artifact(rel_path, analyze_file(rel_path, content), report);
}

}  // namespace ckptfi::lint
