#!/usr/bin/env bash
# Run the repo's curated .clang-tidy profile over src/ bench/ tools/ using
# the compile database CMake always exports to the build tree.
#
#   scripts/run_clang_tidy.sh [build-dir]     (default: build)
#
# Exits 0 when clang-tidy is not installed (the container used for local
# development does not ship it; CI does) so the script can sit in front of
# the test suite unconditionally. Any clang-tidy diagnostic is an error:
# .clang-tidy sets WarningsAsErrors: '*'.
set -euo pipefail

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$tidy_bin' not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 2
fi

mapfile -t sources < <(git ls-files 'src/*.cpp' 'bench/*.cpp' 'tools/*.cpp')
echo "run_clang_tidy: ${#sources[@]} file(s), profile $(pwd)/.clang-tidy"

status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
    "${sources[@]}" || status=$?
else
  for f in "${sources[@]}"; do
    "$tidy_bin" -p "$build_dir" --quiet "$f" || status=$?
  done
fi

if [[ $status -ne 0 ]]; then
  echo "run_clang_tidy: findings above must be fixed or NOLINT'ed with a reason" >&2
fi
exit $status
