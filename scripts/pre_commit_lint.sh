#!/usr/bin/env sh
# pre-commit hook: run ckptfi-lint over the files this commit touches.
#
# Install:
#   ln -s ../../scripts/pre_commit_lint.sh .git/hooks/pre-commit
#
# The whole tree is still indexed (so interprocedural chains through
# unchanged files stay visible) but only findings in changed files are
# reported, and the shared on-disk index cache means the index step replays
# from disk — a warm run is a few milliseconds. The cache lives in the
# gitignored .ckptfi-lint-cache/ at the repo root and is safe to share with
# ctest's lint_repo_clean (entries are written via temp-file + rename).
#
# See docs/LINT.md for the rules and the `ckptfi-lint: allow(<rule>) reason`
# suppression syntax.
set -eu

root="$(git rev-parse --show-toplevel)"
lint=""
for candidate in \
    "$root/build/tools/ckptfi_lint" \
    "$root/build-asan/tools/ckptfi_lint"; do
  if [ -x "$candidate" ]; then lint="$candidate"; break; fi
done
if [ -z "$lint" ]; then
  echo "pre_commit_lint: no built ckptfi_lint found; run" >&2
  echo "  cmake --build build -j --target ckptfi_lint" >&2
  echo "(skipping lint — NOT a pass)" >&2
  exit 0
fi

exec "$lint" --root="$root" --changed-only --index-cache \
  src bench examples tests tools
