// Deterministic distributed training + checkpoint corruption — the paper's
// full experimental setup in miniature (Section V-A3).
//
// Trains MiniAlexNet data-parallel over 3 simulated workers with the
// deterministic all-reduce, demonstrates the HOROVOD_FUSION_THRESHOLD
// effect (fused vs unfused reductions diverge bitwise), then corrupts a
// checkpoint of the distributed training and resumes it.
#include <cmath>
#include <cstdio>

#include "core/corrupter.hpp"
#include "data/synthetic_cifar.hpp"
#include "frameworks/framework.hpp"
#include "models/models.hpp"
#include "nn/parallel.hpp"

using namespace ckptfi;

namespace {

std::unique_ptr<nn::Model> make_model() {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::make_mini_alexnet(mc);
  model->init(2021);
  return model;
}

nn::DataParallelConfig dp_config(std::size_t fusion) {
  nn::DataParallelConfig cfg;
  cfg.workers = 3;
  cfg.fusion_threshold = fusion;
  cfg.sgd.lr = 0.02;
  return cfg;
}

}  // namespace

int main() {
  data::SyntheticCifarConfig dc;
  dc.num_train = 192;
  dc.num_test = 96;
  const auto split = data::make_synthetic_cifar10(dc);
  data::DataLoader loader(split.train, 24, 7);
  data::DataLoader test_loader(split.test, 24, 7);
  const auto test_batches = test_loader.sequential_batches();

  // 1. Fusion effect: two deterministic trainings that differ bitwise.
  auto fingerprint = [&](std::size_t fusion) {
    nn::DataParallelTrainer dp(make_model, dp_config(fusion));
    for (std::size_t e = 0; e < 2; ++e) dp.train_epoch(loader.batches(e));
    double sum = 0;
    for (const auto& p : dp.model().params())
      for (double v : p.value->vec()) sum += v;
    return sum;
  };
  const double unfused = fingerprint(0);
  const double fused = fingerprint(256);
  std::printf("parameter-sum fingerprint after 2 epochs over 3 workers:\n");
  std::printf("  fusion off (HOROVOD_FUSION_THRESHOLD=0): %.17g\n", unfused);
  std::printf("  fusion on  (bucketed reduction):         %.17g\n", fused);
  std::printf("  bitwise identical: %s  (numerically equal to ~1e-9: %s)\n\n",
              unfused == fused ? "yes" : "no",
              std::fabs(unfused - fused) < 1e-6 ? "yes" : "no");

  // 2. Distributed training -> checkpoint -> corrupt -> resume.
  nn::DataParallelTrainer dp(make_model, dp_config(0));
  for (std::size_t e = 0; e < 2; ++e) dp.train_epoch(loader.batches(e));
  auto adapter = fw::make_adapter("tensorflow");
  mh5::File ckpt = adapter->checkpoint_to_file(dp.model(), 64, 2);
  std::printf("checkpointed distributed training at epoch 2 "
              "(accuracy %.3f)\n",
              nn::evaluate(dp.model(), test_batches));

  core::CorrupterConfig cc;
  cc.injection_attempts = 100;
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.seed = 5;
  core::Corrupter(cc).corrupt(ckpt);

  nn::DataParallelTrainer resumed(make_model, dp_config(0));
  adapter->load_from_file(resumed.model(), ckpt);
  resumed.sync_replicas();  // all workers restart from the corrupted state
  for (std::size_t e = 2; e < 4; ++e) resumed.train_epoch(loader.batches(e));
  std::printf("resumed distributed training from corrupted checkpoint: "
              "accuracy %.3f after 2 more epochs (100 bit-flips absorbed)\n",
              nn::evaluate(resumed.model(), test_batches));
  return 0;
}
