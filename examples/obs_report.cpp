// obs_report: run one small experiment cell with full observability on and
// dump the three artifacts the obs subsystem produces:
//
//   obs_metrics.json   metrics registry snapshot (also printed as a table)
//   obs_trace.json     Chrome trace-event JSON — open in chrome://tracing
//                      or https://ui.perfetto.dev to see the nested
//                      baseline / corrupt / resume phase spans
//   obs_events.jsonl   structured domain events (bitflip_applied,
//                      checkpoint_saved, epoch_done, nev_detected, ...)
//
//   $ ./obs_report [epochs] [restart_epoch]
//
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/corrupter.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/obs.hpp"

using namespace ckptfi;

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void print_metrics_table(const obs::Snapshot& snap) {
  core::TextTable counters({"counter", "value"});
  for (const auto& c : snap.counters) {
    counters.add_row({c.name, std::to_string(c.value)});
  }
  std::printf("%s\n", counters.str().c_str());

  core::TextTable gauges({"gauge", "value"});
  for (const auto& g : snap.gauges) {
    gauges.add_row({g.name, fmt(g.value)});
  }
  std::printf("%s\n", gauges.str().c_str());

  core::TextTable hists(
      {"histogram", "count", "mean", "p50", "p90", "p99", "max"});
  for (const auto& h : snap.histograms) {
    hists.add_row({h.name, std::to_string(h.count), fmt(h.mean), fmt(h.p50),
                   fmt(h.p90), fmt(h.p99), fmt(h.max)});
  }
  std::printf("%s\n", hists.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total_epochs = 2;
  std::size_t restart_epoch = 1;
  if (argc > 1) {
    char* end = nullptr;
    total_epochs = std::strtoul(argv[1], &end, 10);
    if (*end != '\0' || total_epochs == 0) {
      std::fprintf(stderr, "usage: %s [epochs >= 1] [restart_epoch]\n",
                   argv[0]);
      return 2;
    }
  }
  if (argc > 2) {
    char* end = nullptr;
    restart_epoch = std::strtoul(argv[2], &end, 10);
    if (*end != '\0' || restart_epoch >= total_epochs) {
      std::fprintf(stderr, "usage: %s [epochs] [restart_epoch < epochs]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_all_enabled(true);
  obs::EventLog::global().open_sink("obs_events.jsonl");

  // A 2-epoch AlexNet cell: train to the restart epoch, corrupt the
  // checkpoint, resume to the end — the paper's pipeline, fully instrumented.
  core::ExperimentConfig cfg;
  cfg.framework = "chainer";
  cfg.model = "alexnet";
  cfg.model_cfg.width = 4;
  cfg.data_cfg.num_train = 160;
  cfg.data_cfg.num_test = 80;
  cfg.total_epochs = total_epochs;
  cfg.restart_epoch = restart_epoch;
  core::ExperimentRunner runner(cfg);

  std::printf("running %s/%s: baseline to epoch %zu, corrupt, resume to %zu\n",
              cfg.framework.c_str(), cfg.model.c_str(), cfg.restart_epoch,
              cfg.total_epochs);

  mh5::File ckpt = runner.restart_checkpoint();
  ckpt.save("obs_report_clean.h5");

  core::CorrupterConfig cc;
  cc.injection_type = core::InjectionType::Count;
  cc.injection_attempts = 50;
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.seed = 7;
  core::Corrupter corrupter(cc);

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);
  const core::InjectionReport report = corrupter.corrupt(ckpt, &ctx);
  ckpt.save("obs_report_corrupted.h5");
  std::printf("corrupted: %" PRIu64 " flips applied, %" PRIu64
              " bytes scanned\n",
              report.injections, report.bytes_scanned);

  const nn::TrainResult res = runner.resume_training(ckpt);
  std::printf("resume: final accuracy %.3f%s\n\n", res.final_accuracy,
              res.collapsed ? "  [collapsed: N-EV]" : "");

  // --- dump the three artifacts ---
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  print_metrics_table(snap);
  {
    std::ofstream out("obs_metrics.json", std::ios::trunc);
    out << snap.to_json().dump(2) << "\n";
  }
  obs::TraceRecorder::global().save("obs_trace.json");
  obs::EventLog::global().close_sink();

  std::printf(
      "wrote obs_metrics.json (%zu counters, %zu gauges, %zu histograms), "
      "obs_trace.json (%zu spans), obs_events.jsonl (%zu events)\n",
      snap.counters.size(), snap.gauges.size(), snap.histograms.size(),
      obs::TraceRecorder::global().size(), obs::EventLog::global().size());
  return 0;
}
