// ckpt_inspect: h5ls-style inspector for mh5 / npz checkpoint files.
//
//   $ ./ckpt_inspect <file.h5|file.npz> [--nev] [--check]
//
// Prints the container format version, the tree (groups, datasets with
// dtype/shape, attributes) and — for streamed v2 containers — the dataset
// TOC with each payload's offset, byte count and CRC-32. With --nev it adds
// a NaN/Inf/extreme-value scan per dataset (the first thing one wants to
// know about a possibly-corrupted checkpoint); with --check it verifies
// every dataset payload against its stored CRC and exits non-zero on any
// mismatch.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/nev.hpp"
#include "hdf5/npz.hpp"
#include "util/bitops.hpp"

using namespace ckptfi;

namespace {

std::string attr_to_string(const mh5::AttrValue& v) {
  if (std::holds_alternative<std::int64_t>(v))
    return std::to_string(std::get<std::int64_t>(v));
  if (std::holds_alternative<double>(v))
    return std::to_string(std::get<double>(v));
  return "\"" + std::get<std::string>(v) + "\"";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool scan_nev = false, check_crcs = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nev") == 0) {
      scan_nev = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_crcs = true;
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <file.h5|file.npz> [--nev] [--check]\n",
                 argv[0]);
    return 2;
  }
  try {
    const bool is_npz = ends_with(path, ".npz");
    // Lazy open: tree/TOC printing works even when a payload is corrupt —
    // --check then names the bad dataset instead of dying at open.
    const mh5::File file =
        is_npz ? mh5::load_npz(path) : mh5::File::load_lazy(path);

    std::printf("%s  (%llu entries in %zu datasets)\n", path.c_str(),
                static_cast<unsigned long long>(file.total_entries()),
                file.dataset_paths().size());
    if (!is_npz) {
      std::printf("format: mh5 v%u\n",
                  mh5::File::probe_version(path));
    }
    file.visit([&](const std::string& p, const mh5::Node& node) {
      const std::string display = p.empty() ? "/" : p;
      if (node.is_group()) {
        std::printf("%-52s group\n", display.c_str());
      } else {
        const mh5::Dataset& ds = node.dataset();
        std::string shape = "[";
        for (std::size_t i = 0; i < ds.dims().size(); ++i) {
          if (i) shape += ",";
          shape += std::to_string(ds.dims()[i]);
        }
        shape += "]";
        std::printf("%-52s %-4s %s", display.c_str(),
                    mh5::dtype_name(ds.dtype()).c_str(), shape.c_str());
        if (scan_nev && mh5::dtype_is_float(ds.dtype())) {
          std::uint64_t nan = 0, inf = 0, extreme = 0;
          double min_v = 0, max_v = 0;
          bool first = true;
          for (std::uint64_t i = 0; i < ds.num_elements(); ++i) {
            const double v = ds.get_double(i);
            if (std::isnan(v)) {
              ++nan;
            } else if (std::isinf(v)) {
              ++inf;
            } else {
              if (std::fabs(v) > kExtremeThreshold) ++extreme;
              if (first || v < min_v) min_v = v;
              if (first || v > max_v) max_v = v;
              first = false;
            }
          }
          std::printf("  range [%.4g, %.4g]", min_v, max_v);
          if (nan + inf + extreme > 0) {
            std::printf("  ** N-EV: %llu NaN, %llu Inf, %llu extreme",
                        static_cast<unsigned long long>(nan),
                        static_cast<unsigned long long>(inf),
                        static_cast<unsigned long long>(extreme));
          }
        }
        std::printf("\n");
      }
      for (const auto& [name, value] : node.attrs()) {
        std::printf("%-52s   @%s = %s\n", "", name.c_str(),
                    attr_to_string(value).c_str());
      }
    });
    if (!file.toc().empty()) {
      std::printf("\nTOC (%zu payloads):\n", file.toc().size());
      std::printf("%-52s %10s %10s %10s\n", "dataset", "offset", "nbytes",
                  "crc32");
      for (const auto& e : file.toc()) {
        std::printf("%-52s %10llu %10llu 0x%08x\n", e.path.c_str(),
                    static_cast<unsigned long long>(e.offset),
                    static_cast<unsigned long long>(e.nbytes), e.crc);
      }
    }
    if (scan_nev) {
      const core::NevScan scan = core::scan_checkpoint(file);
      std::printf("\ntotal: %llu/%llu float entries are N-EV\n",
                  static_cast<unsigned long long>(scan.nev()),
                  static_cast<unsigned long long>(scan.total));
    }
    if (check_crcs) {
      if (is_npz) {
        std::fprintf(stderr, "--check: not supported for npz archives\n");
        return 2;
      }
      const auto errors = mh5::File::verify(path);
      if (errors.empty()) {
        std::printf("\ncheck: all dataset CRCs verify\n");
      } else {
        std::printf("\ncheck: %zu dataset(s) FAILED verification\n",
                    errors.size());
        for (const auto& e : errors) std::printf("  %s\n", e.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
