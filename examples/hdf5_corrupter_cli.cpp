// A command-line checkpoint corrupter, mirroring the paper's open-source
// hdf5_corrupter tool: all Table I settings are read from a JSON config.
//
//   $ ./hdf5_corrupter_cli <config.json> <input.h5> <output.h5> [log.json]
//
// Example config (every field optional; defaults in Table I order):
//   {
//     "injection_probability": 1.0,
//     "injection_type": "count",            // or "percentage"
//     "injection_attempts": 100,
//     "float_precision": 64,
//     "corruption_mode": "bit_range",       // bit_mask | scaling_factor
//     "first_bit": 0, "last_bit": 61,
//     "bit_mask": "101101",
//     "scaling_factor": 4500.0,
//     "allow_NaN_values": false,
//     "locations_to_corrupt": ["predictor/conv1_1"],
//     "use_random_locations": true,
//     "seed": 42
//   }
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/corrupter.hpp"
#include "core/nev.hpp"
#include "util/common.hpp"

using namespace ckptfi;

int main(int argc, char** argv) {
  if (argc < 4 || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s <config.json> <input.h5> <output.h5> [log.json]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::ifstream in(argv[1]);
    if (!in) throw ckptfi::Error(std::string("cannot open config ") + argv[1]);
    std::stringstream ss;
    ss << in.rdbuf();
    const core::CorrupterConfig cfg =
        core::CorrupterConfig::from_json(Json::parse(ss.str()));

    core::Corrupter corrupter(cfg);
    const core::InjectionReport rep =
        corrupter.corrupt_file(argv[2], argv[3]);

    std::printf("attempts: %llu  injections: %llu  prob-skipped: %llu  "
                "nan-retries: %llu  gave-up: %llu\n",
                static_cast<unsigned long long>(rep.attempts),
                static_cast<unsigned long long>(rep.injections),
                static_cast<unsigned long long>(rep.prob_skipped),
                static_cast<unsigned long long>(rep.nan_retries),
                static_cast<unsigned long long>(rep.nan_gave_up));

    const core::NevScan scan = core::scan_checkpoint(mh5::File::load(argv[3]));
    std::printf("output N-EV scan: %llu NaN, %llu Inf, %llu extreme "
                "(of %llu float entries)\n",
                static_cast<unsigned long long>(scan.nan),
                static_cast<unsigned long long>(scan.inf),
                static_cast<unsigned long long>(scan.extreme),
                static_cast<unsigned long long>(scan.total));

    if (argc == 5) {
      rep.log.save(argv[4]);
      std::printf("injection log -> %s\n", argv[4]);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
