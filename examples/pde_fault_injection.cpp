// Checkpoint alteration on a traditional iterative scientific code
// (the paper's Section VI.5 claim made executable).
//
// Runs the 2-D Poisson problem with two solvers, corrupts their mh5
// checkpoints with the very same Corrupter used on DL models, and shows the
// contrast: Jacobi self-heals (a corrupted iterate is just another starting
// guess), while CG's recurrence state silently breaks — its internal
// residual no longer tracks the true residual.
#include <cmath>
#include <cstdio>

#include "core/corrupter.hpp"
#include "solver/heat2d.hpp"

using namespace ckptfi;

int main() {
  solver::PoissonProblem problem;
  problem.n = 32;

  // --- Jacobi: corrupt mid-run, resume, still converges -------------------
  solver::Jacobi2D jacobi(problem);
  jacobi.step(500);
  mh5::File ckpt = jacobi.checkpoint();
  std::printf("jacobi @%zu iters: residual %.3e\n", jacobi.iteration(),
              jacobi.residual());

  core::CorrupterConfig cc;
  cc.injection_attempts = 50;
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.seed = 11;
  core::Corrupter(cc).corrupt(ckpt);

  solver::Jacobi2D resumed = solver::Jacobi2D::from_checkpoint(ckpt);
  std::printf("jacobi resumed from corrupted checkpoint: residual %.3e\n",
              resumed.residual());
  const std::size_t extra = resumed.run_until(1e-6, 200000);
  std::printf("jacobi self-healed after %zu extra iterations "
              "(final residual %.3e)\n\n",
              extra, resumed.residual());

  // --- CG: corrupting the iterate breaks the recurrence invariants --------
  solver::ConjugateGradient2D cg(problem);
  cg.step(5);
  mh5::File cg_ckpt = cg.checkpoint();
  std::printf("cg @%zu iters: recurrence residual %.3e, true residual %.3e\n",
              cg.iteration(), cg.residual(), cg.true_residual());

  // Scale a few entries of the solution iterate x: the r/p recurrence never
  // sees the damage.
  core::CorrupterConfig cg_cc;
  cg_cc.corruption_mode = core::CorruptionMode::ScalingFactor;
  cg_cc.scaling_factor = 1e6;
  cg_cc.injection_attempts = 5;
  cg_cc.use_random_locations = false;
  cg_cc.locations_to_corrupt = {"state/x"};
  cg_cc.seed = 11;
  core::Corrupter(cg_cc).corrupt(cg_ckpt);

  solver::ConjugateGradient2D cg_resumed =
      solver::ConjugateGradient2D::from_checkpoint(cg_ckpt);
  cg_resumed.step(50);
  std::printf("cg resumed from corrupted checkpoint, +50 iters:\n");
  std::printf("  internal recurrence residual: %.3e   (says: converged!)\n",
              cg_resumed.residual());
  std::printf("  true residual ||b - Ax||:     %.3e   (reality)\n",
              cg_resumed.true_residual());
  std::printf("the gap is the silent part of silent data corruption: CG's "
              "own convergence signal no longer reflects reality.\n");
  return 0;
}
