// Quickstart: train a model, checkpoint it, corrupt the checkpoint with
// bit-flips, and resume training from the corrupted file — the paper's whole
// methodology in ~60 lines of API use.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/corrupter.hpp"
#include "core/experiment.hpp"
#include "core/nev.hpp"

using namespace ckptfi;

int main() {
  // 1. A (framework, model, precision) experiment context. MiniAlexNet on
  //    synthetic CIFAR-10, checkpoints in the Chainer HDF5 layout.
  core::ExperimentConfig cfg;
  cfg.framework = "chainer";
  cfg.model = "alexnet";
  cfg.model_cfg.width = 8;
  cfg.data_cfg.num_train = 640;
  cfg.data_cfg.num_test = 320;
  cfg.total_epochs = 6;
  cfg.restart_epoch = 2;
  core::ExperimentRunner runner(cfg);

  // 2. Train to the restart epoch and grab the clean checkpoint.
  std::printf("training %s/%s to epoch %zu...\n", cfg.framework.c_str(),
              cfg.model.c_str(), cfg.restart_epoch);
  mh5::File clean = runner.restart_checkpoint();
  clean.save("quickstart_clean.h5");

  // 3. The clean resumed run — the deterministic baseline.
  const nn::TrainResult& base = runner.clean_resume();
  std::printf("clean resume : final accuracy %.3f\n", base.final_accuracy);

  // 4. Corrupt a copy of the checkpoint: 100 random bit-flips, sparing the
  //    most significant exponent bit (the paper's "critical bit").
  core::CorrupterConfig cc;
  cc.injection_type = core::InjectionType::Count;
  cc.injection_attempts = 100;
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.float_precision = 64;
  cc.first_bit = 0;
  cc.last_bit = 61;  // exclude exponent MSB (62) and sign (63)
  cc.seed = 7;
  core::Corrupter corrupter(cc);

  mh5::File corrupted = runner.restart_checkpoint();
  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);
  core::InjectionReport report = corrupter.corrupt(corrupted, &ctx);
  corrupted.save("quickstart_corrupted.h5");
  report.log.save("quickstart_injections.json");
  std::printf("injected %llu bit-flips (%llu NaN-filter retries)\n",
              static_cast<unsigned long long>(report.injections),
              static_cast<unsigned long long>(report.nan_retries));

  const core::NevScan scan = core::scan_checkpoint(corrupted);
  std::printf("checkpoint N-EV scan: %llu NaN, %llu Inf, %llu extreme\n",
              static_cast<unsigned long long>(scan.nan),
              static_cast<unsigned long long>(scan.inf),
              static_cast<unsigned long long>(scan.extreme));

  // 5. Resume training from the corrupted checkpoint.
  nn::TrainResult corrupted_run = runner.resume_training(corrupted);
  std::printf("corrupt resume: final accuracy %.3f%s\n",
              corrupted_run.final_accuracy,
              corrupted_run.collapsed ? "  [training collapsed: N-EV]" : "");

  std::printf("accuracy delta vs clean baseline: %+.4f\n",
              corrupted_run.final_accuracy - base.final_accuracy);
  return 0;
}
