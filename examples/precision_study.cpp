// Floating-point precision study (the paper's Section V-D scenario).
//
// Stores the same trained model at fp16/fp32/fp64, injects increasing
// numbers of bit-flips into each checkpoint, and measures prediction
// accuracy — showing the paper's trade-off: lower precision is cheaper but
// more sensitive to corruption.
#include <cstdio>

#include "core/corrupter.hpp"
#include "core/experiment.hpp"
#include "core/nev.hpp"

using namespace ckptfi;

int main() {
  for (const int precision : {16, 32, 64}) {
    core::ExperimentConfig cfg;
    cfg.framework = "chainer";
    cfg.model = "alexnet";
    cfg.model_cfg.width = 6;
    cfg.data_cfg.num_train = 320;
    cfg.data_cfg.num_test = 160;
    cfg.total_epochs = 8;
    cfg.restart_epoch = 3;
    cfg.precision_bits = precision;
    cfg.seed = 99;
    core::ExperimentRunner runner(cfg);

    // Fully trained checkpoint, stored at this precision.
    const std::size_t trained = cfg.total_epochs;
    const double clean =
        runner.predict(runner.checkpoint_at(trained)).accuracy;
    std::printf("fp%-2d clean prediction accuracy: %.3f\n", precision, clean);

    for (const std::uint64_t flips : {10u, 100u, 1000u}) {
      double acc_sum = 0.0;
      std::size_t nev = 0;
      const std::size_t runs = 5;
      for (std::size_t r = 0; r < runs; ++r) {
        mh5::File ckpt = runner.checkpoint_at(trained);
        core::CorrupterConfig cc;
        cc.float_precision = precision;
        cc.injection_attempts = static_cast<double>(flips);
        cc.corruption_mode = core::CorruptionMode::BitRange;
        cc.first_bit = 0;
        cc.last_bit = precision - 2;  // spare the critical bit
        cc.seed = 31 * r + flips;
        core::Corrupter corrupter(cc);
        corrupter.corrupt(ckpt);
        const nn::EvalResult res = runner.predict(ckpt);
        acc_sum += res.accuracy;
        nev += res.nev ? 1 : 0;
      }
      std::printf("fp%-2d %5llu flips: avg accuracy %.3f  (N-EV %zu/%zu)\n",
                  precision, static_cast<unsigned long long>(flips),
                  acc_sum / static_cast<double>(runs), nev, runs);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper Table VIII): degradation grows with flip rate "
      "and is strongest at fp16 (5 exponent bits of 16 vs 11 of 64).\n");
  return 0;
}
