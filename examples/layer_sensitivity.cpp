// Layer-sensitivity sweep (generalises the paper's Figs. 4 and 6).
//
// Injects a fixed budget of bit-flips into *every* weight layer of a model
// in turn and reports the resumed accuracy per layer — a map of where the
// model is fragile. ResNet50's stage structure makes a nice demo: early
// convolutions matter more than deep bottlenecks.
//
//   $ ./layer_sensitivity [model]   (alexnet | vgg16 | resnet50)
#include <cstdio>
#include <string>

#include "core/corrupter.hpp"
#include "core/experiment.hpp"

using namespace ckptfi;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "alexnet";

  core::ExperimentConfig cfg;
  cfg.framework = "tensorflow";
  cfg.model = model_name;
  cfg.model_cfg.width = model_name == "resnet50" ? 3 : 6;
  cfg.data_cfg.num_train = 256;
  cfg.data_cfg.num_test = 128;
  cfg.total_epochs = 4;
  cfg.restart_epoch = 2;
  cfg.seed = 11;
  core::ExperimentRunner runner(cfg);

  const double clean = runner.clean_resume().final_accuracy;
  std::printf("%s/%s clean resumed accuracy: %.3f\n\n", cfg.framework.c_str(),
              model_name.c_str(), clean);
  std::printf("%-28s %10s %10s %s\n", "injected layer", "accuracy", "delta",
              "collapsed");

  auto model = runner.make_model();
  core::ModelContext ctx = runner.make_context(*model);
  for (const auto& layer : model->weight_layer_names()) {
    mh5::File ckpt = runner.restart_checkpoint();
    core::CorrupterConfig cc;
    cc.injection_attempts = 200;
    cc.corruption_mode = core::CorruptionMode::BitRange;
    cc.first_bit = 0;
    cc.last_bit = 61;
    cc.use_random_locations = false;
    cc.locations_to_corrupt = {"model_weights/" + layer};
    cc.seed = 17;
    core::Corrupter corrupter(cc);
    corrupter.corrupt(ckpt, &ctx);
    const nn::TrainResult res = runner.resume_training(ckpt);
    std::printf("%-28s %10.3f %+10.3f %s\n", layer.c_str(),
                res.final_accuracy, res.final_accuracy - clean,
                res.collapsed ? "yes" : "");
  }
  return 0;
}
