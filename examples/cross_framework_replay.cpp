// Equivalent injection across frameworks (the paper's Section IV-C feature).
//
// Corrupts a Chainer checkpoint of MiniAlexNet, saves the injection log,
// then replays the exact same sequence — same layer, same bit positions,
// same order — against PyTorch and TensorFlow checkpoints whose layouts
// differ (dotted state_dict keys, HWIO kernels). Finally resumes training
// in each framework to compare the impact.
#include <cstdio>

#include "core/equivalent.hpp"
#include "core/experiment.hpp"

using namespace ckptfi;

namespace {

core::ExperimentConfig config_for(const std::string& framework) {
  core::ExperimentConfig cfg;
  cfg.framework = framework;
  cfg.model = "alexnet";
  cfg.model_cfg.width = 6;
  cfg.data_cfg.num_train = 320;
  cfg.data_cfg.num_test = 160;
  cfg.total_epochs = 8;
  cfg.restart_epoch = 3;
  cfg.seed = 2021;
  return cfg;
}

}  // namespace

int main() {
  // 1. Source: corrupt the first conv layer of the Chainer checkpoint.
  core::ExperimentRunner chainer(config_for("chainer"));
  mh5::File source_ckpt = chainer.restart_checkpoint();

  core::CorrupterConfig cc;
  cc.injection_attempts = 200;
  cc.corruption_mode = core::CorruptionMode::BitRange;
  cc.first_bit = 0;
  cc.last_bit = 61;
  cc.use_random_locations = false;
  cc.locations_to_corrupt = {"predictor/conv1"};
  cc.seed = 4;
  core::Corrupter corrupter(cc);

  auto source_model = chainer.make_model();
  core::ModelContext ctx = chainer.make_context(*source_model);
  core::InjectionReport rep = corrupter.corrupt(source_ckpt, &ctx);
  rep.log.set_meta("framework", "chainer");
  rep.log.set_meta("model", "alexnet");
  rep.log.save("replay_log.json");
  std::printf("chainer: injected %llu flips into conv1; log -> replay_log.json\n",
              static_cast<unsigned long long>(rep.injections));

  const nn::TrainResult src_res = chainer.resume_training(source_ckpt);
  std::printf("chainer resume:    final accuracy %.3f (clean %.3f)\n",
              src_res.final_accuracy, chainer.clean_resume().final_accuracy);

  // 2. Replay at the equivalent location of each other framework.
  const core::InjectionLog log = core::InjectionLog::load("replay_log.json");
  for (const std::string target : {"pytorch", "tensorflow"}) {
    core::ExperimentRunner runner(config_for(target));
    mh5::File ckpt = runner.restart_checkpoint();
    auto model = runner.make_model();
    const core::ReplayStats stats = core::replay_injection_log(
        log, ckpt, *model, runner.adapter(), core::ReplayMode::SameLayerBit,
        777);
    const nn::TrainResult res = runner.resume_training(ckpt);
    std::printf("%-10s resume: final accuracy %.3f (clean %.3f) — %llu flips "
                "replayed at equivalent location\n",
                target.c_str(), res.final_accuracy,
                runner.clean_resume().final_accuracy,
                static_cast<unsigned long long>(stats.replayed));
  }
  return 0;
}
