file(REMOVE_RECURSE
  "libckptfi_core.a"
)
