file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_core.dir/corrupter.cpp.o"
  "CMakeFiles/ckptfi_core.dir/corrupter.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/corrupter_config.cpp.o"
  "CMakeFiles/ckptfi_core.dir/corrupter_config.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/diff.cpp.o"
  "CMakeFiles/ckptfi_core.dir/diff.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/equivalent.cpp.o"
  "CMakeFiles/ckptfi_core.dir/equivalent.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/experiment.cpp.o"
  "CMakeFiles/ckptfi_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/injection_log.cpp.o"
  "CMakeFiles/ckptfi_core.dir/injection_log.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/nev.cpp.o"
  "CMakeFiles/ckptfi_core.dir/nev.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/protection.cpp.o"
  "CMakeFiles/ckptfi_core.dir/protection.cpp.o.d"
  "CMakeFiles/ckptfi_core.dir/report.cpp.o"
  "CMakeFiles/ckptfi_core.dir/report.cpp.o.d"
  "libckptfi_core.a"
  "libckptfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
