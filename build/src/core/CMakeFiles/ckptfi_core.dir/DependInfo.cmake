
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/corrupter.cpp" "src/core/CMakeFiles/ckptfi_core.dir/corrupter.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/corrupter.cpp.o.d"
  "/root/repo/src/core/corrupter_config.cpp" "src/core/CMakeFiles/ckptfi_core.dir/corrupter_config.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/corrupter_config.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/ckptfi_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/equivalent.cpp" "src/core/CMakeFiles/ckptfi_core.dir/equivalent.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/equivalent.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/ckptfi_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/injection_log.cpp" "src/core/CMakeFiles/ckptfi_core.dir/injection_log.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/injection_log.cpp.o.d"
  "/root/repo/src/core/nev.cpp" "src/core/CMakeFiles/ckptfi_core.dir/nev.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/nev.cpp.o.d"
  "/root/repo/src/core/protection.cpp" "src/core/CMakeFiles/ckptfi_core.dir/protection.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/protection.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ckptfi_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ckptfi_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frameworks/CMakeFiles/ckptfi_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ckptfi_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ckptfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckptfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ckptfi_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
