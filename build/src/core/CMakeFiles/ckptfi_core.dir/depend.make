# Empty dependencies file for ckptfi_core.
# This may be replaced when dependencies are built.
