file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_solver.dir/heat2d.cpp.o"
  "CMakeFiles/ckptfi_solver.dir/heat2d.cpp.o.d"
  "libckptfi_solver.a"
  "libckptfi_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
