file(REMOVE_RECURSE
  "libckptfi_solver.a"
)
