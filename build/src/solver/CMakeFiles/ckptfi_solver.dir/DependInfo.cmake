
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/heat2d.cpp" "src/solver/CMakeFiles/ckptfi_solver.dir/heat2d.cpp.o" "gcc" "src/solver/CMakeFiles/ckptfi_solver.dir/heat2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
