# Empty dependencies file for ckptfi_solver.
# This may be replaced when dependencies are built.
