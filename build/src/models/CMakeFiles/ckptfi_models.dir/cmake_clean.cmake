file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_models.dir/models.cpp.o"
  "CMakeFiles/ckptfi_models.dir/models.cpp.o.d"
  "libckptfi_models.a"
  "libckptfi_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
