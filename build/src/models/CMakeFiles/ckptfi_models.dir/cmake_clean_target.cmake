file(REMOVE_RECURSE
  "libckptfi_models.a"
)
