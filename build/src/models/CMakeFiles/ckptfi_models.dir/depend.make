# Empty dependencies file for ckptfi_models.
# This may be replaced when dependencies are built.
