# Empty compiler generated dependencies file for ckptfi_frameworks.
# This may be replaced when dependencies are built.
