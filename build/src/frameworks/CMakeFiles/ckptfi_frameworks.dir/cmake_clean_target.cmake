file(REMOVE_RECURSE
  "libckptfi_frameworks.a"
)
