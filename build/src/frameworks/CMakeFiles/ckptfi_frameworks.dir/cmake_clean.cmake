file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_frameworks.dir/framework.cpp.o"
  "CMakeFiles/ckptfi_frameworks.dir/framework.cpp.o.d"
  "libckptfi_frameworks.a"
  "libckptfi_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
