file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_util.dir/bitops.cpp.o"
  "CMakeFiles/ckptfi_util.dir/bitops.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/crc32.cpp.o"
  "CMakeFiles/ckptfi_util.dir/crc32.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/float16.cpp.o"
  "CMakeFiles/ckptfi_util.dir/float16.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/json.cpp.o"
  "CMakeFiles/ckptfi_util.dir/json.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/rng.cpp.o"
  "CMakeFiles/ckptfi_util.dir/rng.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/stats.cpp.o"
  "CMakeFiles/ckptfi_util.dir/stats.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/strings.cpp.o"
  "CMakeFiles/ckptfi_util.dir/strings.cpp.o.d"
  "CMakeFiles/ckptfi_util.dir/threadpool.cpp.o"
  "CMakeFiles/ckptfi_util.dir/threadpool.cpp.o.d"
  "libckptfi_util.a"
  "libckptfi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
