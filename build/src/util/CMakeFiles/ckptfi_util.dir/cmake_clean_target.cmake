file(REMOVE_RECURSE
  "libckptfi_util.a"
)
