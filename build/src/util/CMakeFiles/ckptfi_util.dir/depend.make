# Empty dependencies file for ckptfi_util.
# This may be replaced when dependencies are built.
