# Empty dependencies file for ckptfi_data.
# This may be replaced when dependencies are built.
