file(REMOVE_RECURSE
  "libckptfi_data.a"
)
