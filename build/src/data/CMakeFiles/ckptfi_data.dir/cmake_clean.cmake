file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_data.dir/synthetic_cifar.cpp.o"
  "CMakeFiles/ckptfi_data.dir/synthetic_cifar.cpp.o.d"
  "libckptfi_data.a"
  "libckptfi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
