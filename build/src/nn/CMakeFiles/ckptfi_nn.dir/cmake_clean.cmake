file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_nn.dir/layers.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/loss.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/model.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/model.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/parallel.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/parallel.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/sequential.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/ckptfi_nn.dir/trainer.cpp.o"
  "CMakeFiles/ckptfi_nn.dir/trainer.cpp.o.d"
  "libckptfi_nn.a"
  "libckptfi_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
