# Empty dependencies file for ckptfi_nn.
# This may be replaced when dependencies are built.
