file(REMOVE_RECURSE
  "libckptfi_nn.a"
)
