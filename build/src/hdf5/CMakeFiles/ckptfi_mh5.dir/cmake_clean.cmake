file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_mh5.dir/dtype.cpp.o"
  "CMakeFiles/ckptfi_mh5.dir/dtype.cpp.o.d"
  "CMakeFiles/ckptfi_mh5.dir/file.cpp.o"
  "CMakeFiles/ckptfi_mh5.dir/file.cpp.o.d"
  "CMakeFiles/ckptfi_mh5.dir/node.cpp.o"
  "CMakeFiles/ckptfi_mh5.dir/node.cpp.o.d"
  "CMakeFiles/ckptfi_mh5.dir/npz.cpp.o"
  "CMakeFiles/ckptfi_mh5.dir/npz.cpp.o.d"
  "libckptfi_mh5.a"
  "libckptfi_mh5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_mh5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
