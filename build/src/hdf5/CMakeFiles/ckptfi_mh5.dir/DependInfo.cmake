
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdf5/dtype.cpp" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/dtype.cpp.o" "gcc" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/dtype.cpp.o.d"
  "/root/repo/src/hdf5/file.cpp" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/file.cpp.o" "gcc" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/file.cpp.o.d"
  "/root/repo/src/hdf5/node.cpp" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/node.cpp.o" "gcc" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/node.cpp.o.d"
  "/root/repo/src/hdf5/npz.cpp" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/npz.cpp.o" "gcc" "src/hdf5/CMakeFiles/ckptfi_mh5.dir/npz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
