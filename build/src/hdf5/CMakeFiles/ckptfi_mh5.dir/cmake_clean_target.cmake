file(REMOVE_RECURSE
  "libckptfi_mh5.a"
)
