# Empty dependencies file for ckptfi_mh5.
# This may be replaced when dependencies are built.
