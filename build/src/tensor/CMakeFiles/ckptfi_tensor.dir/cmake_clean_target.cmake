file(REMOVE_RECURSE
  "libckptfi_tensor.a"
)
