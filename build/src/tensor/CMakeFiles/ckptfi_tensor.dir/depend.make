# Empty dependencies file for ckptfi_tensor.
# This may be replaced when dependencies are built.
