file(REMOVE_RECURSE
  "CMakeFiles/ckptfi_tensor.dir/ops.cpp.o"
  "CMakeFiles/ckptfi_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/ckptfi_tensor.dir/quantize.cpp.o"
  "CMakeFiles/ckptfi_tensor.dir/quantize.cpp.o.d"
  "CMakeFiles/ckptfi_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ckptfi_tensor.dir/tensor.cpp.o.d"
  "libckptfi_tensor.a"
  "libckptfi_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckptfi_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
