
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models/test_extended_models.cpp" "tests/CMakeFiles/test_models.dir/models/test_extended_models.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_extended_models.cpp.o.d"
  "/root/repo/tests/models/test_models.cpp" "tests/CMakeFiles/test_models.dir/models/test_models.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckptfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/ckptfi_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ckptfi_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ckptfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckptfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ckptfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
