file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_gradcheck.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_parallel.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_parallel.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_resume_semantics.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_resume_semantics.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_sequential.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_sequential.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
