
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bitops.cpp" "tests/CMakeFiles/test_util.dir/util/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bitops.cpp.o.d"
  "/root/repo/tests/util/test_common.cpp" "tests/CMakeFiles/test_util.dir/util/test_common.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_common.cpp.o.d"
  "/root/repo/tests/util/test_crc32.cpp" "tests/CMakeFiles/test_util.dir/util/test_crc32.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_crc32.cpp.o.d"
  "/root/repo/tests/util/test_float16.cpp" "tests/CMakeFiles/test_util.dir/util/test_float16.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_float16.cpp.o.d"
  "/root/repo/tests/util/test_json.cpp" "tests/CMakeFiles/test_util.dir/util/test_json.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_json.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_threadpool.cpp" "tests/CMakeFiles/test_util.dir/util/test_threadpool.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckptfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/ckptfi_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ckptfi_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ckptfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckptfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ckptfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
