file(REMOVE_RECURSE
  "CMakeFiles/test_mh5.dir/hdf5/test_dtype.cpp.o"
  "CMakeFiles/test_mh5.dir/hdf5/test_dtype.cpp.o.d"
  "CMakeFiles/test_mh5.dir/hdf5/test_file.cpp.o"
  "CMakeFiles/test_mh5.dir/hdf5/test_file.cpp.o.d"
  "CMakeFiles/test_mh5.dir/hdf5/test_node.cpp.o"
  "CMakeFiles/test_mh5.dir/hdf5/test_node.cpp.o.d"
  "CMakeFiles/test_mh5.dir/hdf5/test_npz.cpp.o"
  "CMakeFiles/test_mh5.dir/hdf5/test_npz.cpp.o.d"
  "test_mh5"
  "test_mh5.pdb"
  "test_mh5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mh5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
