# Empty dependencies file for test_mh5.
# This may be replaced when dependencies are built.
