
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_canonical_mapping.cpp" "tests/CMakeFiles/test_core.dir/core/test_canonical_mapping.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_canonical_mapping.cpp.o.d"
  "/root/repo/tests/core/test_corrupter.cpp" "tests/CMakeFiles/test_core.dir/core/test_corrupter.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_corrupter.cpp.o.d"
  "/root/repo/tests/core/test_corrupter_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_corrupter_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_corrupter_config.cpp.o.d"
  "/root/repo/tests/core/test_corrupter_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_corrupter_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_corrupter_properties.cpp.o.d"
  "/root/repo/tests/core/test_diff.cpp" "tests/CMakeFiles/test_core.dir/core/test_diff.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_diff.cpp.o.d"
  "/root/repo/tests/core/test_equivalent.cpp" "tests/CMakeFiles/test_core.dir/core/test_equivalent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_equivalent.cpp.o.d"
  "/root/repo/tests/core/test_experiment.cpp" "tests/CMakeFiles/test_core.dir/core/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_experiment.cpp.o.d"
  "/root/repo/tests/core/test_injection_log.cpp" "tests/CMakeFiles/test_core.dir/core/test_injection_log.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_injection_log.cpp.o.d"
  "/root/repo/tests/core/test_nev.cpp" "tests/CMakeFiles/test_core.dir/core/test_nev.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_nev.cpp.o.d"
  "/root/repo/tests/core/test_protection.cpp" "tests/CMakeFiles/test_core.dir/core/test_protection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_protection.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckptfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/ckptfi_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ckptfi_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ckptfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckptfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ckptfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
