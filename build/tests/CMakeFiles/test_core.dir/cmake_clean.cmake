file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_canonical_mapping.cpp.o"
  "CMakeFiles/test_core.dir/core/test_canonical_mapping.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_corrupter.cpp.o"
  "CMakeFiles/test_core.dir/core/test_corrupter.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_corrupter_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_corrupter_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_corrupter_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_corrupter_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_diff.cpp.o"
  "CMakeFiles/test_core.dir/core/test_diff.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_equivalent.cpp.o"
  "CMakeFiles/test_core.dir/core/test_equivalent.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_injection_log.cpp.o"
  "CMakeFiles/test_core.dir/core/test_injection_log.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_nev.cpp.o"
  "CMakeFiles/test_core.dir/core/test_nev.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_protection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_protection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
