# Empty compiler generated dependencies file for bench_fig5_equivalent_injection.
# This may be replaced when dependencies are built.
