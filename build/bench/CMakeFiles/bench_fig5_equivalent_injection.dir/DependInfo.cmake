
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_equivalent_injection.cpp" "bench/CMakeFiles/bench_fig5_equivalent_injection.dir/bench_fig5_equivalent_injection.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_equivalent_injection.dir/bench_fig5_equivalent_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckptfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/ckptfi_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ckptfi_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ckptfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckptfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ckptfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/ckptfi_mh5.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckptfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
