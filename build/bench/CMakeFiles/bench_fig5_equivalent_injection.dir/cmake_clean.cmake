file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_equivalent_injection.dir/bench_fig5_equivalent_injection.cpp.o"
  "CMakeFiles/bench_fig5_equivalent_injection.dir/bench_fig5_equivalent_injection.cpp.o.d"
  "bench_fig5_equivalent_injection"
  "bench_fig5_equivalent_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_equivalent_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
