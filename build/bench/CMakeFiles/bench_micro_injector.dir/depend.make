# Empty dependencies file for bench_micro_injector.
# This may be replaced when dependencies are built.
