file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_injector.dir/bench_micro_injector.cpp.o"
  "CMakeFiles/bench_micro_injector.dir/bench_micro_injector.cpp.o.d"
  "bench_micro_injector"
  "bench_micro_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
