file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bit_ranges.dir/bench_fig2_bit_ranges.cpp.o"
  "CMakeFiles/bench_fig2_bit_ranges.dir/bench_fig2_bit_ranges.cpp.o.d"
  "bench_fig2_bit_ranges"
  "bench_fig2_bit_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bit_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
