# Empty dependencies file for bench_fig2_bit_ranges.
# This may be replaced when dependencies are built.
