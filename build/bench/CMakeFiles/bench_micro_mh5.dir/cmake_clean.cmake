file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mh5.dir/bench_micro_mh5.cpp.o"
  "CMakeFiles/bench_micro_mh5.dir/bench_micro_mh5.cpp.o.d"
  "bench_micro_mh5"
  "bench_micro_mh5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mh5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
