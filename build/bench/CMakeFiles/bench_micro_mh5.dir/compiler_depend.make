# Empty compiler generated dependencies file for bench_micro_mh5.
# This may be replaced when dependencies are built.
