file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_layer_injection.dir/bench_fig4_layer_injection.cpp.o"
  "CMakeFiles/bench_fig4_layer_injection.dir/bench_fig4_layer_injection.cpp.o.d"
  "bench_fig4_layer_injection"
  "bench_fig4_layer_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_layer_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
