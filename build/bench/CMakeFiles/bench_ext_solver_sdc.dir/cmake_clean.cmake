file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_solver_sdc.dir/bench_ext_solver_sdc.cpp.o"
  "CMakeFiles/bench_ext_solver_sdc.dir/bench_ext_solver_sdc.cpp.o.d"
  "bench_ext_solver_sdc"
  "bench_ext_solver_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_solver_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
