# Empty compiler generated dependencies file for bench_ext_solver_sdc.
# This may be replaced when dependencies are built.
