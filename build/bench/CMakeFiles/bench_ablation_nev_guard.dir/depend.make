# Empty dependencies file for bench_ablation_nev_guard.
# This may be replaced when dependencies are built.
