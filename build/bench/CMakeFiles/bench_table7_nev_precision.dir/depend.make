# Empty dependencies file for bench_table7_nev_precision.
# This may be replaced when dependencies are built.
