# Empty compiler generated dependencies file for bench_fig3_bitflip_rates.
# This may be replaced when dependencies are built.
