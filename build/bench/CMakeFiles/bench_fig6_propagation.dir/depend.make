# Empty dependencies file for bench_fig6_propagation.
# This may be replaced when dependencies are built.
