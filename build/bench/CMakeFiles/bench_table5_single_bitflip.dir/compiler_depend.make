# Empty compiler generated dependencies file for bench_table5_single_bitflip.
# This may be replaced when dependencies are built.
