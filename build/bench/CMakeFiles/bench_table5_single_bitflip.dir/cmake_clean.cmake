file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_single_bitflip.dir/bench_table5_single_bitflip.cpp.o"
  "CMakeFiles/bench_table5_single_bitflip.dir/bench_table5_single_bitflip.cpp.o.d"
  "bench_table5_single_bitflip"
  "bench_table5_single_bitflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_single_bitflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
