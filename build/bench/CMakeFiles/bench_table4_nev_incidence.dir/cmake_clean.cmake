file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_nev_incidence.dir/bench_table4_nev_incidence.cpp.o"
  "CMakeFiles/bench_table4_nev_incidence.dir/bench_table4_nev_incidence.cpp.o.d"
  "bench_table4_nev_incidence"
  "bench_table4_nev_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_nev_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
