# Empty dependencies file for bench_table4_nev_incidence.
# This may be replaced when dependencies are built.
