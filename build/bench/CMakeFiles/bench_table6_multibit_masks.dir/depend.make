# Empty dependencies file for bench_table6_multibit_masks.
# This may be replaced when dependencies are built.
