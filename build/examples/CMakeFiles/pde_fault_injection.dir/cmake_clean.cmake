file(REMOVE_RECURSE
  "CMakeFiles/pde_fault_injection.dir/pde_fault_injection.cpp.o"
  "CMakeFiles/pde_fault_injection.dir/pde_fault_injection.cpp.o.d"
  "pde_fault_injection"
  "pde_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
