# Empty dependencies file for pde_fault_injection.
# This may be replaced when dependencies are built.
