# Empty compiler generated dependencies file for hdf5_corrupter_cli.
# This may be replaced when dependencies are built.
