file(REMOVE_RECURSE
  "CMakeFiles/hdf5_corrupter_cli.dir/hdf5_corrupter_cli.cpp.o"
  "CMakeFiles/hdf5_corrupter_cli.dir/hdf5_corrupter_cli.cpp.o.d"
  "hdf5_corrupter_cli"
  "hdf5_corrupter_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5_corrupter_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
