# Empty dependencies file for layer_sensitivity.
# This may be replaced when dependencies are built.
