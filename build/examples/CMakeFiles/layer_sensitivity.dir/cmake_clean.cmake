file(REMOVE_RECURSE
  "CMakeFiles/layer_sensitivity.dir/layer_sensitivity.cpp.o"
  "CMakeFiles/layer_sensitivity.dir/layer_sensitivity.cpp.o.d"
  "layer_sensitivity"
  "layer_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
