# Empty compiler generated dependencies file for precision_study.
# This may be replaced when dependencies are built.
