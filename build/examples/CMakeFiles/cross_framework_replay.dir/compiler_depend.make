# Empty compiler generated dependencies file for cross_framework_replay.
# This may be replaced when dependencies are built.
