file(REMOVE_RECURSE
  "CMakeFiles/cross_framework_replay.dir/cross_framework_replay.cpp.o"
  "CMakeFiles/cross_framework_replay.dir/cross_framework_replay.cpp.o.d"
  "cross_framework_replay"
  "cross_framework_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_framework_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
